// Multi-tenant approximate-sort service: a sharded pool of engines behind
// a bounded request queue.
//
// The paper's write-cost savings only matter at scale if many sort jobs
// can share one approximate-memory substrate. SortService is that sharing
// layer: tenants register a (backend, knob, resilience) profile through
// the PR-5 MemoryBackend registry, submit SortRequests in arrival bursts,
// and the service batches the backlog onto a sharded pool of
// ApproxSortEngines driven by the deterministic ThreadPool.
//
// Job classes. Both execution paths run through the common core::JobPlan
// abstraction (core/job_plan.h): kInMemory jobs execute the resilient
// approx-refine path, kExtSort jobs the record-payload external sort
// (extsort/extsort_plan.h) under a per-tenant MemoryBudget lease reserved
// at admission. Both classes share one admission queue, charge their Eq. 2
// write cost into the same TenantLedger and WearPlacement accounting, and
// count against the tenant's per-epoch cost quota.
//
// Tenant cost quotas. TenantSpec::epoch_cost_quota bounds the Eq. 2 write
// cost (simulated ns) a tenant may charge per wear epoch (the whole device
// life on an endurance-less substrate). A tenant at or over its quota has
// its queued jobs shed at admission with an honest Unavailable, counted in
// ServiceStats::jobs_shed_quota, until the next epoch starts.
//
// Virtual-time latency. Alongside the wall-clock submit-to-terminal stamps
// (reporting-only, host-noise-prone), the service keeps a deterministic
// virtual clock in the async_device style: every completed job contributes
// its modeled service time (JobOutcome::service_us — memory cost for
// in-memory jobs, device makespan for extsort jobs) to its shard's serial
// queue, shards advance in parallel, and a job's virtual latency is its
// completion position on that clock minus its virtual submit stamp. Pure
// function of the trace and cost ledgers, so bench gates on virtual
// p50/p99 can be hard where wall-clock gates are advisory.
//
// Determinism contract. Scheduling is batch-synchronous: RunBatch admits
// jobs from the FIFO backlog onto per-shard run lists using only
// deterministic state (queue occupancy, per-shard admission quotas,
// cooldown flags), then executes all shards in parallel with a barrier at
// the end of the batch. Each shard runs its list serially, each shard owns
// its substrate (engines, wear ledger, fault hook) exclusively, and every
// job rebases the shard memory's RNG tree onto a substream keyed by its
// ticket alone (ApproxMemory::BeginJobStream). Consequently, for a fixed
// trace and shard count, every job's output digest, cost ledger, and the
// per-tenant cumulative ledgers are byte-identical at ANY thread count —
// threads only decide which shards share a core, never what a shard
// computes. The service_concurrency_test pins this against a serial
// replay at threads one through eight.
//
// Admission control. The backlog is bounded (queue_capacity): submissions
// beyond it are shed immediately with an honest Unavailable status.
// Each batch, a shard admits at most shard_batch_quota jobs — or
// cooldown_admit jobs while it is cooling down because its previous job
// climbed the PR-3 resilience ladder (retry/escalation/fallback) or
// finished unverified. Jobs that find no shard quota are deferred to the
// next batch; after max_deferrals deferrals they are shed, again with an
// honest status. Deferred jobs therefore always terminate: completed,
// failed, or shed — never silently dropped.
//
// Wear-aware placement. Each shard substrate routes every allocation of
// every tenant engine through one WearPlacement policy, rotating hot
// allocations across PCM bank lanes by accumulated P&V wear and steering
// around regions the health monitor quarantined (see wear_placement.h).
//
// Endurance and graceful degradation. With ServiceOptions::endurance
// enabled, every shard substrate carries an approx::EnduranceLedger fed by
// the same Eq. 2 wear ChargeJobCost already charges, plus a WearErrorHook
// that makes aged banks genuinely err more (approx/endurance.h). The
// service reacts to the shrinking substrate instead of pretending it is
// immortal: per-shard admission quotas scale with live-bank capacity, an
// exhausted shard admits nothing (and a fully exhausted service sheds with
// an honest Unavailable), tenant knobs tighten toward precise as a shard's
// banks age (deterministically, from charged wear alone), and a per-wear-
// epoch SLO ledger tracks p50/p99 latency and write-reduction drift across
// the device's life. Retirement timelines and all digests stay
// bit-identical at any thread count — wall clock never feeds a decision.
//
// Threading contract: Submit/RunBatch/RunUntilIdle and all accessors must
// be called from one driver thread; the service parallelizes internally.
#ifndef APPROXMEM_SERVICE_SORT_SERVICE_H_
#define APPROXMEM_SERVICE_SORT_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "approx/endurance.h"
#include "approx/fault_hook.h"
#include "common/memory_budget.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/job_plan.h"
#include "core/resilience.h"
#include "extsort/extsort_plan.h"
#include "mlc/calibration.h"
#include "service/service_trace.h"
#include "service/slo_ledger.h"
#include "service/wear_placement.h"

namespace approxmem::service {

/// One tenant's service profile: which memory technology its jobs run on,
/// at what knob, and how hard the resilience ladder may climb for it.
struct TenantSpec {
  std::string name;
  /// Registry name of the tenant's memory technology.
  std::string backend = std::string(approx::kPcmBackendName);
  /// Approximation knob; NaN means the backend's sweet spot.
  double knob = std::numeric_limits<double>::quiet_NaN();
  /// Folded into every engine seed serving this tenant.
  uint64_t seed = 1;
  /// Run jobs under the verified-retry ladder (core/resilience.h). When
  /// false, jobs run plain approx-refine and fail on the first unverified
  /// output. (kExtSort jobs verify per run and have no ladder either way.)
  bool resilient = true;
  core::ResilienceOptions resilience;
  /// Out-of-core execution settings for the tenant's kExtSort jobs: the
  /// per-job working-memory lease and the modeled device.
  extsort::ExtsortPlanOptions extsort;
  /// Capacity of the tenant's extsort working-memory budget (modeled
  /// bytes). Each kExtSort job reserves extsort.lease_bytes from it at
  /// admission and releases on completion, so the capacity bounds the
  /// tenant's concurrent out-of-core working set; jobs whose lease does
  /// not fit are deferred until one frees.
  size_t extsort_budget_bytes = 1u << 20;
  /// Eq. 2 write-cost quota (simulated ns) the tenant may charge per wear
  /// epoch; 0 = unlimited. At or over quota, the tenant's queued jobs are
  /// shed with an honest Unavailable until the next epoch (on an
  /// endurance-less substrate there is only epoch 0, so the quota is a
  /// whole-life budget).
  double epoch_cost_quota = 0.0;
};

enum class JobState : uint8_t {
  /// In the backlog, not yet admitted to a shard.
  kQueued,
  /// Still in the backlog after at least one failed admission attempt.
  kDeferred,
  /// Ran and produced a verified, exactly sorted output.
  kCompleted,
  /// Ran but errored or finished unverified (status says which).
  kFailed,
  /// Never ran: rejected by admission control (status says why).
  kShed,
};

std::string_view JobStateName(JobState state);

/// Everything the service knows about one submitted job.
struct JobRecord {
  uint64_t ticket = 0;
  SortRequest request;
  JobState state = JobState::kQueued;
  /// Shard that ran the job; -1 until admitted.
  int shard = -1;
  /// Batch index the job executed in; -1 until admitted.
  int batch = -1;
  int deferrals = 0;
  Status status;
  bool verified = false;
  /// Resilience-ladder attempts the job consumed (1 = first try verified).
  size_t attempts = 0;
  /// FNV-1a digests of the final keys / final IDs (0 until completed).
  uint64_t keys_digest = 0;
  uint64_t ids_digest = 0;
  /// The job's honest cumulative cost: every attempt plus canary traffic.
  approx::MemoryStats cost;
  /// Precise-baseline write cost (Equation 2's denominator).
  double baseline_write_cost = 0.0;
  /// Equation 2 over the job's cumulative cost.
  double write_reduction = 0.0;
  /// Wear epoch of the shard substrate the job ran in (retirements so far
  /// when the job started; 0 on a fresh or endurance-less substrate).
  uint64_t wear_epoch = 0;
  /// Knob the job actually ran at, after aging-driven tightening (equals
  /// the tenant knob / backend default on a healthy substrate; 0 until the
  /// job ran).
  double effective_knob = 0.0;
  /// Wall-clock submit-to-terminal latency. Reporting only — never feeds
  /// a digest or a scheduling decision.
  double latency_seconds = 0.0;
  /// Deterministic submit-to-terminal latency on the service's virtual
  /// clock, µs (see the virtual-time paragraph above). Replays
  /// bit-identically at any thread count.
  double virtual_latency_us = 0.0;
  /// Modeled service time the job contributed to its shard's virtual
  /// queue, µs (0 for jobs that never ran).
  double service_us = 0.0;
  /// Out-of-core extras, zero for in-memory jobs: device bytes written
  /// beyond the final output, and merge passes beyond run formation.
  uint64_t bytes_spilled = 0;
  size_t merge_passes = 0;
};

/// Per-tenant cumulative accounting, merged from job records on report.
struct TenantLedger {
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_shed = 0;
  uint64_t deferral_events = 0;
  /// Sum of completed/failed jobs' cumulative ledgers (Eq. 2 numerator).
  approx::MemoryStats cost;
  /// Sum of the matching precise baselines (Eq. 2 denominator).
  double baseline_write_cost = 0.0;

  /// Cumulative Equation 2 across the tenant's whole traffic.
  double CumulativeWriteReduction() const {
    return baseline_write_cost > 0.0
               ? 1.0 - cost.write_cost / baseline_write_cost
               : 0.0;
  }

  /// FNV-1a digest of every counter — equal digests mean the ledger
  /// replayed identically (e.g. across thread counts).
  uint64_t Digest() const;
};

struct AdmissionOptions {
  /// Upper bound on jobs queued (backlog) awaiting admission; submissions
  /// beyond it are shed at once. The property suite asserts the backlog
  /// high-water mark never exceeds this.
  size_t queue_capacity = 64;
  /// Jobs one shard may admit per batch.
  int shard_batch_quota = 4;
  /// Admission quota of a shard that is cooling down after its previous
  /// job climbed the resilience ladder or finished unverified. 0 defers
  /// everything away from the shard for one batch.
  int cooldown_admit = 1;
  /// Deferrals a job survives before admission control sheds it.
  int max_deferrals = 3;
};

struct ServiceOptions {
  int shards = 4;
  /// Threads driving the shard pool; <= 0 means hardware concurrency. Any
  /// value yields identical results; only wall-clock changes.
  int threads = 0;
  uint64_t seed = 42;
  uint64_t calibration_trials = 20000;
  AdmissionOptions admission;
  /// Online health monitoring (canary probes + quarantine) on every shard
  /// engine. On by default: a service must notice a degrading substrate.
  bool health_monitor = true;
  /// Wear-aware bank rotation on every shard substrate.
  bool wear_leveling = true;
  WearLevelOptions wear;
  /// Device-lifetime modeling: per-bank P&V budgets, wear-dependent error
  /// escalation, and bank retirement (approx/endurance.h). Requires
  /// wear_leveling (the ledger is fed by placement's job charges); the
  /// banks/lane geometry is taken from `wear`, so leave
  /// endurance.banks/bank_lane_bytes at their defaults.
  approx::EnduranceOptions endurance;
  /// Knob multiplier applied per escalation level of the most-aged live
  /// bank on a job's shard — graceful degradation toward precise for
  /// tenants placed on aged substrate. Floored at the backend's min_knob.
  double aging_knob_factor = 0.5;
  /// Optional shared calibration cache (thread-safe); when null the
  /// service builds one, shared by all shard engines, so each T still
  /// calibrates exactly once per process.
  std::shared_ptr<mlc::CalibrationCache> shared_calibration;
  /// Optional per-shard fault hook factory (fault storms in tests and the
  /// soak bench). Called once per shard at construction; the service owns
  /// the returned hooks. Each hook is only ever driven by its own shard,
  /// so single-threaded hook implementations are safe.
  std::function<std::unique_ptr<approx::MemoryFaultHook>(int shard)>
      fault_hook_factory;
};

/// Aggregate service counters (see also tenant_ledger / shard accessors).
struct ServiceStats {
  size_t batches = 0;
  size_t jobs_submitted = 0;
  size_t jobs_completed = 0;
  size_t jobs_failed = 0;
  size_t jobs_shed = 0;
  /// Job-batches spent waiting in the backlog after an admission miss.
  size_t deferral_events = 0;
  size_t backlog_high_water = 0;
  /// Shard-batches spent in resilience cooldown.
  size_t cooldown_batches = 0;
  /// Regions quarantined across all shard engines.
  uint64_t quarantined_regions = 0;
  /// Banks retired across all shard substrates (0 without endurance).
  uint64_t banks_retired = 0;
  /// Jobs shed because every shard's substrate was exhausted.
  size_t jobs_shed_exhausted = 0;
  /// Jobs shed because their tenant's Eq. 2 write-cost quota for the
  /// current wear epoch was exhausted.
  size_t jobs_shed_quota = 0;
};

class SortService {
 public:
  explicit SortService(const ServiceOptions& options);
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Registers a tenant profile. Fails on duplicate names, unregistered
  /// backends, or an invalid knob for the backend.
  Status RegisterTenant(const TenantSpec& tenant);

  /// Queues one request and returns its ticket. Unknown tenants return an
  /// error; a full backlog sheds the job immediately (the ticket's record
  /// reports kShed with an honest status).
  StatusOr<uint64_t> Submit(const SortRequest& request);

  /// Admits from the backlog and executes one batch across the shard pool.
  /// Returns the number of jobs that ran.
  size_t RunBatch();

  /// Runs batches until every submitted job is terminal.
  void RunUntilIdle();

  /// Convenience driver: submits each burst of `trace`, running batches
  /// between bursts, then drains. Returns stats() at the end.
  ServiceStats Run(const RequestTrace& trace);

  const JobRecord& job(uint64_t ticket) const;
  const std::vector<JobRecord>& jobs() const { return records_; }

  /// Ledger of `tenant`, merged on the fly from job records.
  TenantLedger tenant_ledger(const std::string& tenant) const;
  std::vector<std::string> tenant_names() const;

  const ServiceStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return options_; }

  /// Shard s's wear ledger (null when wear_leveling is off).
  const WearPlacement* shard_wear(int shard) const;
  /// Aggregated health-monitor counters across shard `shard`'s engines.
  approx::HealthStats shard_health(int shard) const;
  /// Shard s's endurance ledger (null when endurance is off).
  const approx::EnduranceLedger* shard_endurance(int shard) const;
  /// Per-wear-epoch SLO accounting (wall-clock latency percentiles are
  /// reporting-only; the virtual-time percentiles and everything else are
  /// deterministic).
  const SloLedger& slo() const { return slo_; }
  /// Eq. 2 write cost `tenant` has charged in wear epoch `epoch` — what
  /// the admission quota compares against epoch_cost_quota.
  double tenant_epoch_cost(const std::string& tenant, uint64_t epoch) const;
  /// Current position of the deterministic virtual clock, µs.
  double virtual_now_us() const { return virtual_now_us_; }
  /// FNV digest over every shard's retirement timeline, in shard order —
  /// bit-identical across thread counts and identical replays.
  uint64_t RetirementTimelineDigest() const;

 private:
  struct Shard;

  /// One tenant's runtime state: the registered spec plus the driver-
  /// thread-only accounting admission control reads (extsort budget,
  /// per-epoch charged cost).
  struct TenantState {
    TenantSpec spec;
    /// Bounds the tenant's concurrent extsort working memory; leases are
    /// reserved at admission and released on report, both on the driver
    /// thread, so occupancy is deterministic.
    std::unique_ptr<MemoryBudget> extsort_budget;
    /// Eq. 2 write cost charged per wear epoch (ServiceWearEpoch keys).
    std::map<uint64_t, double> epoch_write_cost;
  };

  core::ApproxSortEngine& EngineFor(Shard& shard, const TenantSpec& tenant);
  void ExecuteShard(Shard& shard);
  void RunJob(Shard& shard, uint64_t ticket);
  /// Retirements summed across all shard substrates — the epoch stamped on
  /// jobs that never reached a shard, and the key tenant cost quotas are
  /// charged under.
  uint64_t ServiceWearEpoch() const;

  ServiceOptions options_;
  std::shared_ptr<mlc::CalibrationCache> calibration_;
  std::unique_ptr<ThreadPool> pool_;
  std::map<std::string, TenantState> tenants_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<JobRecord> records_;
  /// Tickets awaiting admission, FIFO.
  std::deque<uint64_t> backlog_;
  /// Submit wall-clock stamps (seconds on a steady clock), per ticket.
  std::vector<double> submit_time_;
  /// Virtual-clock submit stamps, µs, per ticket.
  std::vector<double> virtual_submit_us_;
  /// The deterministic service-wide virtual clock: advanced each batch to
  /// the latest shard queue position.
  double virtual_now_us_ = 0.0;
  /// Live extsort leases by ticket (reserved at admission, released on
  /// report).
  std::map<uint64_t, BudgetReservation> extsort_leases_;
  ServiceStats stats_;
  SloLedger slo_;
};

}  // namespace approxmem::service

#endif  // APPROXMEM_SERVICE_SORT_SERVICE_H_
