#include "service/sort_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "testing/differential_oracle.h"

namespace approxmem::service {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t MixSeed(uint64_t service_seed, int shard,
                 const TenantSpec& tenant) {
  uint64_t h = testing::Fnv1a64(tenant.name.data(), tenant.name.size());
  h = testing::Fnv1a64(&tenant.seed, sizeof(tenant.seed), h);
  const uint64_t s = static_cast<uint64_t>(shard);
  h = testing::Fnv1a64(&s, sizeof(s), h);
  return service_seed ^ h;
}

uint64_t DigestU64(uint64_t h, uint64_t value) {
  return testing::Fnv1a64(&value, sizeof(value), h);
}

uint64_t DigestDouble(uint64_t h, double value) {
  return testing::Fnv1a64(&value, sizeof(value), h);
}

}  // namespace

std::string_view JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kDeferred:
      return "DEFERRED";
    case JobState::kCompleted:
      return "COMPLETED";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kShed:
      return "SHED";
  }
  return "UNKNOWN";
}

uint64_t TenantLedger::Digest() const {
  uint64_t h = testing::Fnv1a64(nullptr, 0);
  h = DigestU64(h, jobs_completed);
  h = DigestU64(h, jobs_failed);
  h = DigestU64(h, jobs_shed);
  h = DigestU64(h, deferral_events);
  h = DigestU64(h, cost.word_reads);
  h = DigestU64(h, cost.word_writes);
  h = DigestU64(h, cost.corrupted_writes);
  h = DigestU64(h, cost.sequential_writes);
  h = DigestU64(h, cost.degraded_regions);
  h = DigestDouble(h, cost.write_cost);
  h = DigestDouble(h, cost.read_cost);
  h = DigestDouble(h, cost.pv_iterations);
  h = DigestDouble(h, baseline_write_cost);
  return h;
}

/// One shard substrate: the engines, wear ledger, and fault hook a single
/// shard owns exclusively. Only the shard's serial run loop (and the
/// driver thread, between batches) ever touches it.
struct SortService::Shard {
  int index = 0;
  /// Device-lifetime ledger of the shard substrate (null when endurance is
  /// off). Shared, not owned, by `wear` and `wear_hook`.
  std::unique_ptr<approx::EnduranceLedger> endurance;
  std::unique_ptr<WearPlacement> wear;
  std::unique_ptr<approx::MemoryFaultHook> fault_hook;
  /// Realizes the ledger's escalated error rates; chains fault_hook so
  /// storms and aging compose. Engines see this hook when endurance is on.
  std::unique_ptr<approx::WearErrorHook> wear_hook;
  std::map<std::string, std::unique_ptr<core::ApproxSortEngine>> engines;
  /// Tickets assigned for the current batch, in execution order.
  std::vector<uint64_t> run_list;
  /// Set when a job in the shard's previous batch climbed the resilience
  /// ladder or finished unverified; halves the shard's next admissions.
  bool cooling = false;
};

SortService::SortService(const ServiceOptions& options)
    : options_(options),
      calibration_(options.shared_calibration
                       ? options.shared_calibration
                       : std::make_shared<mlc::CalibrationCache>(
                             mlc::MlcConfig{}, options.calibration_trials,
                             options.seed ^ 0xca11b7a7e5eedULL)),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  APPROXMEM_CHECK(options_.shards > 0);
  APPROXMEM_CHECK(options_.admission.queue_capacity > 0);
  APPROXMEM_CHECK(options_.admission.shard_batch_quota > 0);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    if (options_.wear_leveling) {
      if (options_.endurance.enabled) {
        // Endurance needs the placement charges as its wear feed, so it
        // only exists under wear leveling; geometry comes from the
        // placement policy so ledger banks and placement lanes agree.
        approx::EnduranceOptions endurance = options_.endurance;
        endurance.banks = options_.wear.banks;
        endurance.bank_lane_bytes = WearPlacement::kBankLaneBytes;
        shard->endurance =
            std::make_unique<approx::EnduranceLedger>(endurance);
      }
      shard->wear = std::make_unique<WearPlacement>(
          options_.wear, shard->endurance.get());
    }
    if (options_.fault_hook_factory) {
      shard->fault_hook = options_.fault_hook_factory(s);
    }
    if (shard->endurance) {
      shard->wear_hook = std::make_unique<approx::WearErrorHook>(
          shard->endurance.get(), shard->fault_hook.get());
    }
    shards_.push_back(std::move(shard));
  }
}

SortService::~SortService() = default;

Status SortService::RegisterTenant(const TenantSpec& tenant) {
  if (tenant.name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  if (tenants_.count(tenant.name) != 0) {
    return Status::InvalidArgument("tenant already registered: " +
                                   tenant.name);
  }
  if (!approx::IsRegisteredBackend(tenant.backend)) {
    return Status::InvalidArgument("unknown backend for tenant " +
                                   tenant.name + ": " + tenant.backend);
  }
  if (!std::isnan(tenant.knob)) {
    // Validate the knob against a throwaway backend instance now, so a bad
    // profile is a recoverable registration error instead of a crash in
    // the middle of a batch.
    approx::BackendContext context;
    context.calibration = calibration_;
    context.calibration_trials = options_.calibration_trials;
    StatusOr<std::unique_ptr<approx::MemoryBackend>> backend =
        approx::CreateMemoryBackend(tenant.backend, context);
    if (!backend.ok()) return backend.status();
    const Status valid =
        (*backend)->Validate(approx::AllocSpec::Approx(tenant.knob, 1));
    if (!valid.ok()) return valid;
  }
  // Out-of-core settings must be runnable: a lease too small for a 2-run
  // sort, or larger than the tenant budget, would make every kExtSort job
  // fail (or never admit) — registration errors, not batch surprises.
  if (tenant.extsort.lease_bytes <
      2 * extsort::kRecordRunFootprintBytesPerElement) {
    return Status::InvalidArgument(
        "extsort lease below the working set of a 2-element run for "
        "tenant " +
        tenant.name);
  }
  if (tenant.extsort.lease_bytes > tenant.extsort_budget_bytes) {
    return Status::InvalidArgument(
        "extsort lease exceeds the tenant extsort budget for tenant " +
        tenant.name);
  }
  {
    const Status device_valid = tenant.extsort.device.Validate();
    if (!device_valid.ok()) return device_valid;
  }
  if (tenant.epoch_cost_quota < 0.0) {
    return Status::InvalidArgument(
        "epoch_cost_quota must be non-negative for tenant " + tenant.name);
  }
  TenantState state;
  state.spec = tenant;
  state.extsort_budget =
      std::make_unique<MemoryBudget>(tenant.extsort_budget_bytes);
  tenants_.emplace(tenant.name, std::move(state));
  return Status::Ok();
}

StatusOr<uint64_t> SortService::Submit(const SortRequest& request) {
  if (tenants_.count(request.tenant) == 0) {
    return Status::InvalidArgument("unknown tenant: " + request.tenant);
  }
  if (request.n == 0) {
    return Status::InvalidArgument("empty sort request");
  }
  const uint64_t ticket = records_.size();
  JobRecord record;
  record.ticket = ticket;
  record.request = request;
  ++stats_.jobs_submitted;
  submit_time_.push_back(NowSeconds());
  virtual_submit_us_.push_back(virtual_now_us_);
  if (backlog_.size() >= options_.admission.queue_capacity) {
    record.state = JobState::kShed;
    record.status = Status::Unavailable(
        "backlog full (" +
        std::to_string(options_.admission.queue_capacity) +
        " queued); shed at submission");
    record.wear_epoch = ServiceWearEpoch();
    ++stats_.jobs_shed;
    slo_.RecordShed(record.wear_epoch);
    records_.push_back(std::move(record));
    return ticket;
  }
  records_.push_back(std::move(record));
  backlog_.push_back(ticket);
  if (backlog_.size() > stats_.backlog_high_water) {
    stats_.backlog_high_water = backlog_.size();
  }
  return ticket;
}

size_t SortService::RunBatch() {
  if (backlog_.empty()) return 0;

  // End of life: when every shard's substrate is exhausted nothing can run
  // correctly anymore, so the whole backlog is shed with an honest status
  // rather than pretending retired banks still hold data.
  if (options_.endurance.enabled) {
    bool any_live = false;
    for (const auto& shard : shards_) {
      if (!shard->endurance || shard->endurance->live_banks() > 0) {
        any_live = true;
        break;
      }
    }
    if (!any_live) {
      const uint64_t epoch = ServiceWearEpoch();
      while (!backlog_.empty()) {
        JobRecord& record = records_[backlog_.front()];
        backlog_.pop_front();
        record.state = JobState::kShed;
        record.status = Status::Unavailable(
            "service substrate exhausted: every bank on every shard is "
            "retired");
        record.wear_epoch = epoch;
        record.latency_seconds = NowSeconds() - submit_time_[record.ticket];
        record.virtual_latency_us =
            virtual_now_us_ - virtual_submit_us_[record.ticket];
        ++stats_.jobs_shed;
        ++stats_.jobs_shed_exhausted;
        slo_.RecordShed(epoch);
      }
      return 0;
    }
  }
  ++stats_.batches;

  // Admission: walk the backlog FIFO and place each job on the least-
  // loaded shard that still has quota. Every input here — queue order,
  // quotas, cooldown flags, live-bank capacity — is deterministic
  // shared-shard state, so the per-shard run lists are identical at any
  // thread count.
  std::vector<int> quota(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->run_list.clear();
    // Graceful degradation: a shard's quota shrinks with its live-bank
    // capacity — an aged substrate takes proportionally less traffic, and
    // an exhausted one admits nothing at all.
    int capacity_quota = options_.admission.shard_batch_quota;
    if (const approx::EnduranceLedger* endurance =
            shards_[s]->endurance.get()) {
      if (endurance->live_banks() == 0) {
        capacity_quota = 0;
      } else if (endurance->live_banks() < endurance->total_banks()) {
        capacity_quota = std::max(
            1, capacity_quota * endurance->live_banks() /
                   endurance->total_banks());
      }
    }
    if (shards_[s]->cooling) {
      quota[s] = std::min(options_.admission.cooldown_admit, capacity_quota);
      ++stats_.cooldown_batches;
    } else {
      quota[s] = capacity_quota;
    }
  }
  std::deque<uint64_t> deferred;
  const uint64_t admission_epoch = ServiceWearEpoch();
  while (!backlog_.empty()) {
    const uint64_t ticket = backlog_.front();
    backlog_.pop_front();
    JobRecord& record = records_[ticket];
    TenantState& tenant = tenants_.at(record.request.tenant);
    // Tenant cost quota: a tenant at or over its Eq. 2 write-cost budget
    // for the current wear epoch is shed honestly, not run on credit. The
    // charged totals only change on the driver thread (merge-on-report),
    // so this check is deterministic.
    if (tenant.spec.epoch_cost_quota > 0.0) {
      const auto charged = tenant.epoch_write_cost.find(admission_epoch);
      if (charged != tenant.epoch_write_cost.end() &&
          charged->second >= tenant.spec.epoch_cost_quota) {
        record.state = JobState::kShed;
        record.status = Status::Unavailable(
            "tenant " + record.request.tenant +
            " exhausted its Eq. 2 write-cost quota for wear epoch " +
            std::to_string(admission_epoch));
        record.wear_epoch = admission_epoch;
        record.latency_seconds = NowSeconds() - submit_time_[ticket];
        record.virtual_latency_us =
            virtual_now_us_ - virtual_submit_us_[ticket];
        ++stats_.jobs_shed;
        ++stats_.jobs_shed_quota;
        slo_.RecordShed(record.wear_epoch);
        continue;
      }
    }
    int best = -1;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (static_cast<int>(shards_[s]->run_list.size()) >= quota[s]) continue;
      if (best < 0 || shards_[s]->run_list.size() <
                          shards_[static_cast<size_t>(best)]->run_list.size()) {
        best = static_cast<int>(s);
      }
    }
    // An out-of-core job also needs its working-memory lease from the
    // tenant's extsort budget before it may run; a full budget defers the
    // job exactly like a full shard quota.
    bool lease_ok = true;
    if (best >= 0 &&
        record.request.job_class == core::JobClass::kExtSort) {
      const size_t lease_bytes = tenant.spec.extsort.lease_bytes;
      if (tenant.extsort_budget->CanReserve(lease_bytes)) {
        extsort_leases_.emplace(
            ticket,
            BudgetReservation(tenant.extsort_budget.get(), lease_bytes));
      } else {
        lease_ok = false;
      }
    }
    if (best >= 0 && lease_ok) {
      record.shard = best;
      record.batch = static_cast<int>(stats_.batches) - 1;
      shards_[static_cast<size_t>(best)]->run_list.push_back(ticket);
      continue;
    }
    ++record.deferrals;
    ++stats_.deferral_events;
    if (record.deferrals > options_.admission.max_deferrals) {
      record.state = JobState::kShed;
      record.status = Status::Unavailable(
          "shed by admission control after " +
          std::to_string(record.deferrals) + " deferrals");
      record.wear_epoch = ServiceWearEpoch();
      record.latency_seconds = NowSeconds() - submit_time_[ticket];
      record.virtual_latency_us =
          virtual_now_us_ - virtual_submit_us_[ticket];
      ++stats_.jobs_shed;
      slo_.RecordShed(record.wear_epoch);
    } else {
      record.state = JobState::kDeferred;
      deferred.push_back(ticket);
    }
  }
  backlog_ = std::move(deferred);

  size_t executed = 0;
  for (const auto& shard : shards_) executed += shard->run_list.size();
  if (executed > 0) {
    pool_->ParallelFor(0, shards_.size(),
                       [this](size_t s) { ExecuteShard(*shards_[s]); });
  }

  // Merge-on-report: terminal-state counters, per-epoch SLO samples,
  // tenant cost charges, lease releases, and cross-engine quarantine
  // totals are folded in on the driver thread, after the batch barrier.
  // Iteration is in shard order, so the fold is identical at any thread
  // count. The virtual clock advances here too: each shard replays its run
  // list as a serial queue from the batch's start position, and the
  // service clock moves to the latest shard queue position — async_device
  // channel semantics with shards as channels.
  const uint64_t charge_epoch = ServiceWearEpoch();
  double batch_end_us = virtual_now_us_;
  for (const auto& shard : shards_) {
    double clock_us = virtual_now_us_;
    for (const uint64_t ticket : shard->run_list) {
      JobRecord& record = records_[ticket];
      clock_us += record.service_us;
      record.virtual_latency_us = clock_us - virtual_submit_us_[ticket];
      extsort_leases_.erase(ticket);
      switch (record.state) {
        case JobState::kCompleted:
          ++stats_.jobs_completed;
          tenants_.at(record.request.tenant)
              .epoch_write_cost[charge_epoch] += record.cost.write_cost;
          slo_.RecordCompleted(record.wear_epoch, record.latency_seconds,
                               record.virtual_latency_us,
                               record.write_reduction);
          break;
        case JobState::kShed:
          // A job can only reach kShed inside a run list when its shard's
          // substrate ran out of banks under it mid-batch.
          ++stats_.jobs_shed;
          ++stats_.jobs_shed_exhausted;
          slo_.RecordShed(record.wear_epoch);
          break;
        default:
          // Failed jobs still paid their writes; the quota charges the
          // honest cumulative cost, exactly like the tenant ledger.
          ++stats_.jobs_failed;
          tenants_.at(record.request.tenant)
              .epoch_write_cost[charge_epoch] += record.cost.write_cost;
          slo_.RecordFailed(record.wear_epoch);
          break;
      }
    }
    batch_end_us = std::max(batch_end_us, clock_us);
  }
  virtual_now_us_ = batch_end_us;
  uint64_t quarantined = 0;
  uint64_t retired = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    quarantined += shard_health(static_cast<int>(s)).regions_quarantined;
    if (shards_[s]->endurance) {
      retired += shards_[s]->endurance->wear_epoch();
    }
  }
  stats_.quarantined_regions = quarantined;
  stats_.banks_retired = retired;
  return executed;
}

uint64_t SortService::ServiceWearEpoch() const {
  uint64_t epoch = 0;
  for (const auto& shard : shards_) {
    if (shard->endurance) epoch += shard->endurance->wear_epoch();
  }
  return epoch;
}

void SortService::RunUntilIdle() {
  while (!backlog_.empty()) RunBatch();
}

ServiceStats SortService::Run(const RequestTrace& trace) {
  for (const auto& burst : trace.bursts) {
    for (const SortRequest& request : burst) {
      const StatusOr<uint64_t> ticket = Submit(request);
      APPROXMEM_CHECK_OK(ticket.status());
    }
    RunBatch();
  }
  RunUntilIdle();
  return stats_;
}

core::ApproxSortEngine& SortService::EngineFor(Shard& shard,
                                               const TenantSpec& tenant) {
  auto it = shard.engines.find(tenant.name);
  if (it != shard.engines.end()) return *it->second;
  core::EngineOptions engine_options;
  engine_options.backend = tenant.backend;
  engine_options.seed = MixSeed(options_.seed, shard.index, tenant);
  engine_options.calibration_trials = options_.calibration_trials;
  engine_options.shared_calibration = calibration_;
  engine_options.health.enabled = options_.health_monitor;
  engine_options.placement = shard.wear.get();
  engine_options.fault_hook = shard.wear_hook
                                  ? shard.wear_hook.get()
                                  : shard.fault_hook.get();
  // Jobs already run shard-parallel; intra-sort stays serial so a fully
  // loaded service never oversubscribes the host.
  engine_options.sort_threads = 1;
  auto engine = std::make_unique<core::ApproxSortEngine>(engine_options);
  core::ApproxSortEngine& ref = *engine;
  shard.engines.emplace(tenant.name, std::move(engine));
  return ref;
}

void SortService::ExecuteShard(Shard& shard) {
  bool escalated = false;
  for (const uint64_t ticket : shard.run_list) {
    RunJob(shard, ticket);
    const JobRecord& record = records_[ticket];
    if (record.state != JobState::kCompleted || record.attempts > 1) {
      escalated = true;
    }
  }
  // A shard that admitted nothing this batch has rested; its cooldown ends.
  shard.cooling = escalated;
}

void SortService::RunJob(Shard& shard, uint64_t ticket) {
  JobRecord& record = records_[ticket];
  const TenantSpec& tenant = tenants_.at(record.request.tenant).spec;
  if (shard.endurance) {
    record.wear_epoch = shard.endurance->wear_epoch();
    // The shard may have lost its last bank earlier in this very batch;
    // shed honestly instead of running on a fully retired substrate.
    if (shard.endurance->live_banks() == 0) {
      record.state = JobState::kShed;
      record.status = Status::Unavailable(
          "shard substrate exhausted: every bank retired");
      record.latency_seconds = NowSeconds() - submit_time_[ticket];
      return;
    }
  }
  core::ApproxSortEngine& engine = EngineFor(shard, tenant);
  approx::ApproxMemory& memory = engine.memory();
  if (shard.wear) shard.wear->BeginJob();
  if (shard.wear_hook) shard.wear_hook->BeginJob(ticket);
  double knob = std::isnan(tenant.knob)
                    ? memory.backend().default_approx_knob()
                    : tenant.knob;
  // Graceful degradation, knob half: tighten toward precise as the
  // shard's surviving banks age. The level is a pure function of charged
  // wear, so the tightening replays bit-identically.
  if (shard.endurance) {
    const int level = shard.endurance->MaxLiveEscalationLevel();
    if (level > 0) {
      knob = std::max(memory.backend().min_knob(),
                      knob * std::pow(options_.aging_knob_factor, level));
    }
  }
  record.effective_knob = knob;
  core::JobContext context;
  context.engine = &engine;
  context.ticket = ticket;
  context.knob = knob;
  context.resilient = tenant.resilient;
  context.resilience = tenant.resilience;
  // On an endurance-modeled substrate, quarantines mean persistent damage;
  // re-reading the same placement cannot cure it (see resilience.h).
  if (shard.endurance) context.resilience.skip_retry_on_quarantine = true;

  core::JobOutcome outcome;
  if (record.request.job_class == core::JobClass::kExtSort) {
    extsort::ExtsortJobPlan plan(record.request, tenant.extsort);
    outcome = plan.Execute(context);
  } else {
    core::InMemoryJobPlan plan(record.request);
    outcome = plan.Execute(context);
  }
  record.status = outcome.status;
  record.verified = outcome.verified;
  record.attempts = outcome.attempts;
  record.keys_digest = outcome.keys_digest;
  record.ids_digest = outcome.ids_digest;
  record.cost = outcome.cost;
  record.baseline_write_cost = outcome.baseline_write_cost;
  record.write_reduction = outcome.write_reduction;
  record.service_us = outcome.service_us;
  record.bytes_spilled = outcome.bytes_spilled;
  record.merge_passes = outcome.merge_passes;
  record.state = outcome.status.ok() && outcome.verified
                     ? JobState::kCompleted
                     : JobState::kFailed;
  if (shard.wear) shard.wear->ChargeJobCost(record.cost.pv_iterations);
  record.latency_seconds = NowSeconds() - submit_time_[ticket];
}

const JobRecord& SortService::job(uint64_t ticket) const {
  APPROXMEM_CHECK(ticket < records_.size());
  return records_[ticket];
}

TenantLedger SortService::tenant_ledger(const std::string& tenant) const {
  TenantLedger ledger;
  for (const JobRecord& record : records_) {
    if (record.request.tenant != tenant) continue;
    ledger.deferral_events += static_cast<uint64_t>(record.deferrals);
    switch (record.state) {
      case JobState::kCompleted:
        ++ledger.jobs_completed;
        ledger.cost += record.cost;
        ledger.baseline_write_cost += record.baseline_write_cost;
        break;
      case JobState::kFailed:
        ++ledger.jobs_failed;
        ledger.cost += record.cost;
        ledger.baseline_write_cost += record.baseline_write_cost;
        break;
      case JobState::kShed:
        ++ledger.jobs_shed;
        break;
      case JobState::kQueued:
      case JobState::kDeferred:
        break;
    }
  }
  return ledger;
}

std::vector<std::string> SortService::tenant_names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

double SortService::tenant_epoch_cost(const std::string& tenant,
                                      uint64_t epoch) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0.0;
  const auto cost = it->second.epoch_write_cost.find(epoch);
  return cost != it->second.epoch_write_cost.end() ? cost->second : 0.0;
}

const WearPlacement* SortService::shard_wear(int shard) const {
  APPROXMEM_CHECK(shard >= 0 &&
                  shard < static_cast<int>(shards_.size()));
  return shards_[static_cast<size_t>(shard)]->wear.get();
}

const approx::EnduranceLedger* SortService::shard_endurance(
    int shard) const {
  APPROXMEM_CHECK(shard >= 0 &&
                  shard < static_cast<int>(shards_.size()));
  return shards_[static_cast<size_t>(shard)]->endurance.get();
}

uint64_t SortService::RetirementTimelineDigest() const {
  uint64_t h = testing::Fnv1a64(nullptr, 0);
  for (const auto& shard : shards_) {
    const uint64_t d =
        shard->endurance ? shard->endurance->TimelineDigest() : 0;
    h = DigestU64(h, d);
  }
  return h;
}

approx::HealthStats SortService::shard_health(int shard) const {
  APPROXMEM_CHECK(shard >= 0 &&
                  shard < static_cast<int>(shards_.size()));
  approx::HealthStats total;
  for (const auto& [name, engine] : shards_[static_cast<size_t>(shard)]
                                        ->engines) {
    const approx::HealthStats& stats = engine->memory().health().stats();
    total.canary_writes += stats.canary_writes;
    total.canary_errors += stats.canary_errors;
    total.regions_probed += stats.regions_probed;
    total.regions_quarantined += stats.regions_quarantined;
    total.allocation_retries += stats.allocation_retries;
    total.canary_costs += stats.canary_costs;
  }
  return total;
}

}  // namespace approxmem::service
