#include "service/service_trace.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace approxmem::service {

std::string SortRequest::Name() const {
  std::string name = tenant;
  if (job_class != core::JobClass::kInMemory) {
    name += ' ';
    name += core::JobClassName(job_class);
  }
  name += ' ';
  name += algorithm.Name();
  name += '/';
  name += core::WorkloadName(workload);
  name += " n=" + std::to_string(n);
  name += " seed=" + std::to_string(seed);
  return name;
}

size_t RequestTrace::TotalJobs() const {
  size_t total = 0;
  for (const auto& burst : bursts) total += burst.size();
  return total;
}

RequestTrace MakeRandomTrace(const TraceGenOptions& options) {
  APPROXMEM_CHECK(!options.tenants.empty());
  APPROXMEM_CHECK(options.min_n >= 1 && options.min_n <= options.max_n);
  const std::vector<sort::AlgorithmId> algorithms =
      options.algorithms.empty() ? sort::StudyAlgorithms()
                                 : options.algorithms;
  const std::vector<core::WorkloadKind> workloads =
      options.workloads.empty()
          ? std::vector<core::WorkloadKind>{
                core::WorkloadKind::kUniform, core::WorkloadKind::kSkewed,
                core::WorkloadKind::kNearlySorted,
                core::WorkloadKind::kReversed, core::WorkloadKind::kAllEqual}
          : options.workloads;

  Rng rng(options.seed ^ 0x7ace5eedULL);
  RequestTrace trace;
  trace.bursts.resize(options.bursts);
  uint64_t job_seed = options.seed;
  for (auto& burst : trace.bursts) {
    const size_t jobs = 1 + rng.UniformInt(options.max_burst_jobs);
    burst.resize(jobs);
    for (SortRequest& request : burst) {
      request.tenant = options.tenants[rng.UniformInt(options.tenants.size())];
      request.algorithm = algorithms[rng.UniformInt(algorithms.size())];
      request.workload = workloads[rng.UniformInt(workloads.size())];
      request.n = options.min_n +
                  rng.UniformInt(options.max_n - options.min_n + 1);
      request.seed = ++job_seed;
      if (options.extsort_fraction > 0.0 &&
          rng.UniformDouble() < options.extsort_fraction) {
        request.job_class = core::JobClass::kExtSort;
      }
    }
  }
  return trace;
}

namespace {

/// Candidate shrink variants, smallest-reduction first so the greedy loop
/// converges on a local minimum rather than overshooting.
std::vector<RequestTrace> ShrinkVariants(const RequestTrace& trace) {
  std::vector<RequestTrace> variants;
  // Drop one whole burst.
  for (size_t b = 0; b < trace.bursts.size(); ++b) {
    if (trace.bursts.size() <= 1 && trace.bursts[b].size() <= 1) continue;
    RequestTrace variant = trace;
    variant.bursts.erase(variant.bursts.begin() +
                         static_cast<ptrdiff_t>(b));
    if (variant.TotalJobs() > 0) variants.push_back(std::move(variant));
  }
  // Drop one job.
  for (size_t b = 0; b < trace.bursts.size(); ++b) {
    for (size_t j = 0; j < trace.bursts[b].size(); ++j) {
      if (trace.TotalJobs() <= 1) continue;
      RequestTrace variant = trace;
      auto& burst = variant.bursts[b];
      burst.erase(burst.begin() + static_cast<ptrdiff_t>(j));
      if (burst.empty()) {
        variant.bursts.erase(variant.bursts.begin() +
                             static_cast<ptrdiff_t>(b));
      }
      if (variant.TotalJobs() > 0) variants.push_back(std::move(variant));
    }
  }
  // Halve one job's n.
  for (size_t b = 0; b < trace.bursts.size(); ++b) {
    for (size_t j = 0; j < trace.bursts[b].size(); ++j) {
      if (trace.bursts[b][j].n <= 4) continue;
      RequestTrace variant = trace;
      variant.bursts[b][j].n /= 2;
      variants.push_back(std::move(variant));
    }
  }
  // Demote one extsort job to the in-memory class — a failure that
  // survives the demotion was never about the out-of-core path, so the
  // minimal repro sheds the heavier class.
  for (size_t b = 0; b < trace.bursts.size(); ++b) {
    for (size_t j = 0; j < trace.bursts[b].size(); ++j) {
      if (trace.bursts[b][j].job_class != core::JobClass::kExtSort) continue;
      RequestTrace variant = trace;
      variant.bursts[b][j].job_class = core::JobClass::kInMemory;
      variants.push_back(std::move(variant));
    }
  }
  return variants;
}

}  // namespace

RequestTrace ShrinkTrace(const RequestTrace& trace,
                         const std::function<bool(const RequestTrace&)>&
                             still_fails,
                         size_t max_steps) {
  RequestTrace current = trace;
  size_t steps = 0;
  bool progressed = true;
  while (progressed && steps < max_steps) {
    progressed = false;
    for (RequestTrace& variant : ShrinkVariants(current)) {
      if (++steps > max_steps) break;
      if (still_fails(variant)) {
        current = std::move(variant);
        progressed = true;
        break;
      }
    }
  }
  return current;
}

std::string TraceToString(const RequestTrace& trace) {
  std::string out;
  for (size_t b = 0; b < trace.bursts.size(); ++b) {
    out += "burst " + std::to_string(b) + ":\n";
    for (const SortRequest& request : trace.bursts[b]) {
      out += "  " + request.Name() + "\n";
    }
  }
  return out;
}

}  // namespace approxmem::service
