#include "service/wear_placement.h"

#include "common/check.h"

namespace approxmem::service {

WearPlacement::WearPlacement(const WearLevelOptions& options)
    : options_(options) {
  APPROXMEM_CHECK(options_.banks > 0);
  banks_.resize(static_cast<size_t>(options_.banks));
}

uint64_t WearPlacement::PlaceSpan(uint64_t span) {
  // Least-worn bank wins; ties fall to fewest bytes placed, then lowest
  // index — with no wear reports yet this degrades to byte-balanced
  // rotation, which is exactly the cold-start behaviour we want.
  int best = 0;
  for (int b = 1; b < options_.banks; ++b) {
    const BankWear& cand = banks_[static_cast<size_t>(b)];
    const BankWear& incumbent = banks_[static_cast<size_t>(best)];
    if (cand.wear < incumbent.wear ||
        (cand.wear == incumbent.wear &&
         cand.bytes_placed < incumbent.bytes_placed)) {
      best = b;
    }
  }
  BankWear& bank = banks_[static_cast<size_t>(best)];
  APPROXMEM_CHECK(bank.cursor + span <= kBankLaneBytes);
  const uint64_t base =
      static_cast<uint64_t>(best) * kBankLaneBytes + bank.cursor;
  bank.cursor += span;
  bank.bytes_placed += span;
  ++bank.allocations;
  current_job_spans_.emplace_back(best, span);
  return base;
}

void WearPlacement::OnQuarantine(uint64_t base, uint64_t span) {
  const int b = BankOf(base);
  BankWear& bank = banks_[static_cast<size_t>(b)];
  ++bank.quarantined_regions;
  bank.wear += options_.quarantine_wear_penalty;
  ++quarantine_events_;
  // The quarantined span was already consumed by PlaceSpan, so the lane
  // cursor has moved past it; nothing to rewind. Drop the span from the
  // current job's attribution targets — its canaries failed, the job's
  // data never lived there.
  if (!current_job_spans_.empty() &&
      current_job_spans_.back() == std::make_pair(b, span)) {
    current_job_spans_.pop_back();
  }
}

void WearPlacement::BeginJob() { current_job_spans_.clear(); }

void WearPlacement::ChargeJobCost(double pv_iterations) {
  if (current_job_spans_.empty() || pv_iterations <= 0.0) return;
  uint64_t total_bytes = 0;
  for (const auto& [bank, bytes] : current_job_spans_) total_bytes += bytes;
  if (total_bytes == 0) return;
  for (const auto& [bank, bytes] : current_job_spans_) {
    banks_[static_cast<size_t>(bank)].wear +=
        pv_iterations * (static_cast<double>(bytes) /
                         static_cast<double>(total_bytes));
  }
}

int WearPlacement::BankOf(uint64_t address) const {
  const uint64_t b = address / kBankLaneBytes;
  APPROXMEM_CHECK(b < banks_.size());
  return static_cast<int>(b);
}

double WearPlacement::WearImbalance() const {
  double max_wear = 0.0;
  double total = 0.0;
  int used = 0;
  for (const BankWear& bank : banks_) {
    if (bank.allocations == 0 && bank.wear == 0.0) continue;
    ++used;
    total += bank.wear;
    if (bank.wear > max_wear) max_wear = bank.wear;
  }
  if (used == 0 || total <= 0.0) return 1.0;
  const double mean = total / used;
  return mean > 0.0 ? max_wear / mean : 1.0;
}

}  // namespace approxmem::service
