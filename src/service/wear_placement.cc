#include "service/wear_placement.h"

#include "common/check.h"

namespace approxmem::service {

WearPlacement::WearPlacement(const WearLevelOptions& options,
                             approx::EnduranceLedger* endurance)
    : options_(options), endurance_(endurance) {
  APPROXMEM_CHECK(options_.banks > 0);
  if (endurance_ != nullptr) {
    APPROXMEM_CHECK(endurance_->total_banks() == options_.banks);
  }
  banks_.resize(static_cast<size_t>(options_.banks));
}

uint64_t WearPlacement::PlaceSpan(uint64_t span) {
  // Least-worn live bank wins; ties fall to fewest bytes placed, then
  // lowest index — with no wear reports yet this degrades to byte-balanced
  // rotation, which is exactly the cold-start behaviour we want. Banks the
  // endurance ledger retired are excluded outright.
  int best = -1;
  for (int b = 0; b < options_.banks; ++b) {
    if (endurance_ != nullptr && endurance_->IsRetired(b)) continue;
    if (best < 0) {
      best = b;
      continue;
    }
    const BankWear& cand = banks_[static_cast<size_t>(b)];
    const BankWear& incumbent = banks_[static_cast<size_t>(best)];
    if (cand.wear < incumbent.wear ||
        (cand.wear == incumbent.wear &&
         cand.bytes_placed < incumbent.bytes_placed)) {
      best = b;
    }
  }
  if (best < 0) {
    // Every bank is retired. The policy contract demands progress (a job
    // already mid-flight may still allocate — e.g. a precise fallback
    // attempt), so fall back to the least-worn retired bank; admission
    // control is responsible for not sending new work to an exhausted
    // substrate.
    best = 0;
    for (int b = 1; b < options_.banks; ++b) {
      if (banks_[static_cast<size_t>(b)].wear <
          banks_[static_cast<size_t>(best)].wear) {
        best = b;
      }
    }
  }
  BankWear& bank = banks_[static_cast<size_t>(best)];
  APPROXMEM_CHECK(bank.cursor + span <= kBankLaneBytes);
  const uint64_t base =
      static_cast<uint64_t>(best) * kBankLaneBytes + bank.cursor;
  bank.cursor += span;
  bank.bytes_placed += span;
  ++bank.allocations;
  current_job_spans_.emplace_back(best, span);
  return base;
}

void WearPlacement::OnQuarantine(uint64_t base, uint64_t span) {
  const int b = BankOf(base);
  BankWear& bank = banks_[static_cast<size_t>(b)];
  ++bank.quarantined_regions;
  bank.wear += options_.quarantine_wear_penalty;
  ++quarantine_events_;
  if (endurance_ != nullptr) endurance_->RecordQuarantine(b);
  // The quarantined span was already consumed by PlaceSpan, so the lane
  // cursor has moved past it; nothing to rewind. Drop the span from the
  // current job's attribution targets — its canaries failed, the job's
  // data never lived there.
  if (!current_job_spans_.empty() &&
      current_job_spans_.back() == std::make_pair(b, span)) {
    current_job_spans_.pop_back();
  }
}

void WearPlacement::BeginJob() {
  current_job_spans_.clear();
  if (endurance_ != nullptr) endurance_->BeginJob();
}

void WearPlacement::ChargeJobCost(double pv_iterations) {
  if (pv_iterations <= 0.0) return;
  if (current_job_spans_.empty()) {
    // The job placed nothing (or every span was quarantined away); there
    // is no bank to attribute to, but the wear was real — keep it on an
    // explicit side ledger instead of dropping it.
    unattributed_wear_ += pv_iterations;
    return;
  }
  uint64_t total_bytes = 0;
  for (const auto& [bank, bytes] : current_job_spans_) total_bytes += bytes;
  const size_t spans = current_job_spans_.size();
  for (const auto& [bank, bytes] : current_job_spans_) {
    // Proportional to bytes placed; a job of only zero-byte spans splits
    // the charge equally (never a division by zero, never a drop).
    const double share =
        total_bytes > 0
            ? pv_iterations * (static_cast<double>(bytes) /
                               static_cast<double>(total_bytes))
            : pv_iterations / static_cast<double>(spans);
    banks_[static_cast<size_t>(bank)].wear += share;
    if (endurance_ != nullptr) endurance_->ChargeBank(bank, share);
  }
}

int WearPlacement::BankOf(uint64_t address) const {
  const uint64_t b = address / kBankLaneBytes;
  APPROXMEM_CHECK(b < banks_.size());
  return static_cast<int>(b);
}

int WearPlacement::LiveBankCount() const {
  return endurance_ != nullptr ? endurance_->live_banks() : options_.banks;
}

double WearPlacement::WearImbalance() const {
  double max_wear = 0.0;
  double total = 0.0;
  int used = 0;
  for (const BankWear& bank : banks_) {
    if (bank.allocations == 0 && bank.wear == 0.0) continue;
    ++used;
    total += bank.wear;
    if (bank.wear > max_wear) max_wear = bank.wear;
  }
  if (used == 0 || total <= 0.0) return 1.0;
  const double mean = total / used;
  return mean > 0.0 ? max_wear / mean : 1.0;
}

}  // namespace approxmem::service
