// Service-level-objective tracking across wear epochs.
//
// A device-lifetime story needs more than a retirement timeline: the
// operator has to see what aging *costs the tenants*. The SloLedger bins
// every terminal job by the wear epoch it ran in (epoch = retirements on
// its substrate so far: epoch 0 is the fresh device, each retirement
// starts the next) and tracks, per epoch, the latency distribution
// (p50/p99) and the Equation 2 write-reduction — so p99 drift and
// write-savings decay across the device's life are first-class metrics,
// not something scraped from logs.
//
// Two latency timelines per epoch, same split as extsort/async_device:
//  * Wall clock (latencies): reporting-only — host noise, never fed to a
//    digest or a scheduling decision, advisory in bench gates.
//  * Virtual time (virtual_latencies_us): queue-position × modeled service
//    time, computed by the service from deterministic cost ledgers alone,
//    so virtual p50/p99 replay bit-identically at any thread count — the
//    numbers bench_compare gates on hard.
// Everything else in the ledger (job counts, write reductions, epochs) is
// likewise deterministic.
#ifndef APPROXMEM_SERVICE_SLO_LEDGER_H_
#define APPROXMEM_SERVICE_SLO_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace approxmem::service {

/// One wear epoch's service-level accounting.
struct SloEpochStats {
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_shed = 0;
  /// Sum of completed jobs' Equation 2 write reductions (mean on report).
  double write_reduction_sum = 0.0;
  /// Wall-clock submit-to-terminal latencies of completed jobs, seconds.
  /// Reporting only.
  std::vector<double> latencies;
  /// Deterministic virtual-time latencies of completed jobs, µs.
  std::vector<double> virtual_latencies_us;

  double MeanWriteReduction() const {
    return jobs_completed > 0
               ? write_reduction_sum / static_cast<double>(jobs_completed)
               : 0.0;
  }
  /// Percentile over the recorded latencies (p in [0, 1]); 0 when empty.
  double LatencyPercentile(double p) const;
  double LatencyP50() const { return LatencyPercentile(0.50); }
  double LatencyP99() const { return LatencyPercentile(0.99); }
  /// Percentile over the virtual-time latencies; 0 when empty.
  double VirtualLatencyPercentile(double p) const;
  double VirtualLatencyP50() const { return VirtualLatencyPercentile(0.50); }
  double VirtualLatencyP99() const { return VirtualLatencyPercentile(0.99); }
};

class SloLedger {
 public:
  /// Records one terminal job. `completed`/`failed`/`shed` are mutually
  /// exclusive; latencies and write_reduction are only read for completed
  /// jobs. `virtual_latency_us` is the deterministic queue-time latency
  /// the service computed on its virtual clock.
  void RecordCompleted(uint64_t epoch, double latency_seconds,
                       double virtual_latency_us, double write_reduction);
  void RecordFailed(uint64_t epoch);
  void RecordShed(uint64_t epoch);

  /// Epoch -> stats, keyed and iterated in epoch order.
  const std::map<uint64_t, SloEpochStats>& epochs() const { return epochs_; }

  /// p99 latency of the last epoch over the first (1.0 when fewer than two
  /// epochs have completed jobs) — the soak's latency-drift metric.
  /// Wall-clock, advisory on shared hosts.
  double P99DriftRatio() const;

  /// Same drift ratio over the deterministic virtual-time latencies —
  /// replays bit-identically, so bench gates can be hard.
  double VirtualP99DriftRatio() const;

  /// Mean write reduction of the first epoch minus the last (positive =
  /// savings decayed as the device aged).
  double WriteReductionDrift() const;

 private:
  std::map<uint64_t, SloEpochStats> epochs_;
};

}  // namespace approxmem::service

#endif  // APPROXMEM_SERVICE_SLO_LEDGER_H_
