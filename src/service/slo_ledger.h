// Service-level-objective tracking across wear epochs.
//
// A device-lifetime story needs more than a retirement timeline: the
// operator has to see what aging *costs the tenants*. The SloLedger bins
// every terminal job by the wear epoch it ran in (epoch = retirements on
// its substrate so far: epoch 0 is the fresh device, each retirement
// starts the next) and tracks, per epoch, the latency distribution
// (p50/p99) and the Equation 2 write-reduction — so p99 drift and
// write-savings decay across the device's life are first-class metrics,
// not something scraped from logs.
//
// Latency samples are wall clock and therefore reporting-only: they never
// feed a digest or a scheduling decision. Everything else in the ledger
// (job counts, write reductions, epochs) is deterministic and replays
// bit-identically at any thread count.
#ifndef APPROXMEM_SERVICE_SLO_LEDGER_H_
#define APPROXMEM_SERVICE_SLO_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace approxmem::service {

/// One wear epoch's service-level accounting.
struct SloEpochStats {
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_shed = 0;
  /// Sum of completed jobs' Equation 2 write reductions (mean on report).
  double write_reduction_sum = 0.0;
  /// Wall-clock submit-to-terminal latencies of completed jobs, seconds.
  /// Reporting only.
  std::vector<double> latencies;

  double MeanWriteReduction() const {
    return jobs_completed > 0
               ? write_reduction_sum / static_cast<double>(jobs_completed)
               : 0.0;
  }
  /// Percentile over the recorded latencies (p in [0, 1]); 0 when empty.
  double LatencyPercentile(double p) const;
  double LatencyP50() const { return LatencyPercentile(0.50); }
  double LatencyP99() const { return LatencyPercentile(0.99); }
};

class SloLedger {
 public:
  /// Records one terminal job. `completed`/`failed`/`shed` are mutually
  /// exclusive; latency and write_reduction are only read for completed
  /// jobs.
  void RecordCompleted(uint64_t epoch, double latency_seconds,
                       double write_reduction);
  void RecordFailed(uint64_t epoch);
  void RecordShed(uint64_t epoch);

  /// Epoch -> stats, keyed and iterated in epoch order.
  const std::map<uint64_t, SloEpochStats>& epochs() const { return epochs_; }

  /// p99 latency of the last epoch over the first (1.0 when fewer than two
  /// epochs have completed jobs) — the soak's latency-drift metric.
  double P99DriftRatio() const;

  /// Mean write reduction of the first epoch minus the last (positive =
  /// savings decayed as the device aged).
  double WriteReductionDrift() const;

 private:
  std::map<uint64_t, SloEpochStats> epochs_;
};

}  // namespace approxmem::service

#endif  // APPROXMEM_SERVICE_SLO_LEDGER_H_
