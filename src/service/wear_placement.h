// Wear-aware allocation placement: rotate hot allocations across banks.
//
// PCM cells wear out per program-and-verify pulse, so a long-running
// service that keeps allocating over the same addresses concentrates wear
// exactly where traffic is hottest. WearPlacement implements the
// approx::PlacementPolicy hook with a bank-rotation strategy: the flat
// simulated address space is carved into `banks` giant lanes, every
// allocation is placed in the currently least-worn bank, and the owning
// shard charges each completed job's P&V-iteration ledger back to the
// banks the job actually touched (merge-on-report). Quarantines reported
// by the health monitor add a wear penalty to the afflicted bank, so
// rotation drifts away from degraded banks — the service's use of the
// PR-3 quarantine ledger.
//
// With an EnduranceLedger attached (approx/endurance.h), placement also
// closes the device-lifetime loop: every charge feeds the per-bank P&V
// budget, every quarantine counts toward canary condemnation, and banks
// the ledger retires are permanently excluded from PlaceSpan — the
// substrate genuinely shrinks as it ages.
//
// One WearPlacement serves one shard substrate and is driven serially by
// that shard (the service never runs two jobs of a shard concurrently),
// so the policy is deliberately lock-free; it must not be shared across
// shards.
#ifndef APPROXMEM_SERVICE_WEAR_PLACEMENT_H_
#define APPROXMEM_SERVICE_WEAR_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "approx/approx_memory.h"
#include "approx/endurance.h"

namespace approxmem::service {

struct WearLevelOptions {
  /// Bank lanes the address space is carved into.
  int banks = 8;
  /// Wear units (P&V iterations) added to a bank per quarantined region,
  /// steering rotation away from substrate neighborhoods the health
  /// monitor flagged.
  double quarantine_wear_penalty = 10000.0;
};

/// Per-bank wear accounting.
struct BankWear {
  /// Next free byte offset inside the bank's lane.
  uint64_t cursor = 0;
  uint64_t bytes_placed = 0;
  uint64_t allocations = 0;
  uint64_t quarantined_regions = 0;
  /// Charged wear: P&V iterations attributed to this bank plus quarantine
  /// penalties. The placement key.
  double wear = 0.0;
};

class WearPlacement final : public approx::PlacementPolicy {
 public:
  /// `endurance` is optional and not owned (the service shares one ledger
  /// per shard between placement and the wear-error hook); when set, its
  /// bank count must match `options.banks`.
  explicit WearPlacement(const WearLevelOptions& options,
                         approx::EnduranceLedger* endurance = nullptr);

  // approx::PlacementPolicy:
  uint64_t PlaceSpan(uint64_t span) override;
  void OnQuarantine(uint64_t base, uint64_t span) override;

  /// Marks the start of one job's allocations; the spans placed until the
  /// next BeginJob are the attribution targets of ChargeJobCost. Also
  /// ticks the endurance ledger's job-count virtual time.
  void BeginJob();

  /// Distributes `pv_iterations` of observed wear over the banks the
  /// current job placed allocations in, proportional to bytes placed —
  /// the merge-on-report half of the rotation loop. Jobs whose spans are
  /// all zero bytes split the charge equally across their banks; jobs
  /// that placed nothing at all accrue to unattributed_wear() — the
  /// charge is never dropped and never divides by zero.
  void ChargeJobCost(double pv_iterations);

  const std::vector<BankWear>& banks() const { return banks_; }
  int BankOf(uint64_t address) const;
  uint64_t quarantine_events() const { return quarantine_events_; }

  /// Wear charged by jobs that placed no spans (charged but unattributable
  /// to any bank); kept so the wear ledger stays conservative.
  double unattributed_wear() const { return unattributed_wear_; }

  /// The endurance ledger placement feeds, or null when lifetime modeling
  /// is off.
  const approx::EnduranceLedger* endurance() const { return endurance_; }

  /// Banks still placeable: all of them without an endurance ledger,
  /// otherwise the ledger's live count.
  int LiveBankCount() const;
  /// True when every bank is retired; PlaceSpan still makes progress (the
  /// policy contract) but the owner should stop admitting work here.
  bool SubstrateExhausted() const { return LiveBankCount() == 0; }

  /// Max-over-mean charged wear across banks that ever held an allocation;
  /// 1.0 is perfectly level, `banks` is fully concentrated. The soak
  /// bench's wear-leveling effectiveness metric.
  double WearImbalance() const;

  /// Width of one bank lane in the flat simulated space (1 TiB: far more
  /// than any soak run allocates, so a lane never overflows).
  static constexpr uint64_t kBankLaneBytes = uint64_t{1} << 40;

 private:
  WearLevelOptions options_;
  approx::EnduranceLedger* endurance_;
  std::vector<BankWear> banks_;
  /// (bank, bytes) placements since the last BeginJob.
  std::vector<std::pair<int, uint64_t>> current_job_spans_;
  uint64_t quarantine_events_ = 0;
  double unattributed_wear_ = 0.0;
};

}  // namespace approxmem::service

#endif  // APPROXMEM_SERVICE_WEAR_PLACEMENT_H_
