#include "service/slo_ledger.h"

#include <algorithm>
#include <cmath>

namespace approxmem::service {

double SloEpochStats::LatencyPercentile(double p) const {
  if (latencies.empty()) return 0.0;
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void SloLedger::RecordCompleted(uint64_t epoch, double latency_seconds,
                                double write_reduction) {
  SloEpochStats& stats = epochs_[epoch];
  ++stats.jobs_completed;
  stats.write_reduction_sum += write_reduction;
  stats.latencies.push_back(latency_seconds);
}

void SloLedger::RecordFailed(uint64_t epoch) { ++epochs_[epoch].jobs_failed; }

void SloLedger::RecordShed(uint64_t epoch) { ++epochs_[epoch].jobs_shed; }

double SloLedger::P99DriftRatio() const {
  const SloEpochStats* first = nullptr;
  const SloEpochStats* last = nullptr;
  for (const auto& [epoch, stats] : epochs_) {
    if (stats.latencies.empty()) continue;
    if (first == nullptr) first = &stats;
    last = &stats;
  }
  if (first == nullptr || first == last) return 1.0;
  const double base = first->LatencyP99();
  return base > 0.0 ? last->LatencyP99() / base : 1.0;
}

double SloLedger::WriteReductionDrift() const {
  const SloEpochStats* first = nullptr;
  const SloEpochStats* last = nullptr;
  for (const auto& [epoch, stats] : epochs_) {
    if (stats.jobs_completed == 0) continue;
    if (first == nullptr) first = &stats;
    last = &stats;
  }
  if (first == nullptr || first == last) return 0.0;
  return first->MeanWriteReduction() - last->MeanWriteReduction();
}

}  // namespace approxmem::service
