#include "service/slo_ledger.h"

#include <algorithm>
#include <cmath>

namespace approxmem::service {

namespace {

double Percentile(const std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double SloEpochStats::LatencyPercentile(double p) const {
  return Percentile(latencies, p);
}

double SloEpochStats::VirtualLatencyPercentile(double p) const {
  return Percentile(virtual_latencies_us, p);
}

void SloLedger::RecordCompleted(uint64_t epoch, double latency_seconds,
                                double virtual_latency_us,
                                double write_reduction) {
  SloEpochStats& stats = epochs_[epoch];
  ++stats.jobs_completed;
  stats.write_reduction_sum += write_reduction;
  stats.latencies.push_back(latency_seconds);
  stats.virtual_latencies_us.push_back(virtual_latency_us);
}

void SloLedger::RecordFailed(uint64_t epoch) { ++epochs_[epoch].jobs_failed; }

void SloLedger::RecordShed(uint64_t epoch) { ++epochs_[epoch].jobs_shed; }

double SloLedger::P99DriftRatio() const {
  const SloEpochStats* first = nullptr;
  const SloEpochStats* last = nullptr;
  for (const auto& [epoch, stats] : epochs_) {
    if (stats.latencies.empty()) continue;
    if (first == nullptr) first = &stats;
    last = &stats;
  }
  if (first == nullptr || first == last) return 1.0;
  const double base = first->LatencyP99();
  return base > 0.0 ? last->LatencyP99() / base : 1.0;
}

double SloLedger::VirtualP99DriftRatio() const {
  const SloEpochStats* first = nullptr;
  const SloEpochStats* last = nullptr;
  for (const auto& [epoch, stats] : epochs_) {
    if (stats.virtual_latencies_us.empty()) continue;
    if (first == nullptr) first = &stats;
    last = &stats;
  }
  if (first == nullptr || first == last) return 1.0;
  const double base = first->VirtualLatencyP99();
  return base > 0.0 ? last->VirtualLatencyP99() / base : 1.0;
}

double SloLedger::WriteReductionDrift() const {
  const SloEpochStats* first = nullptr;
  const SloEpochStats* last = nullptr;
  for (const auto& [epoch, stats] : epochs_) {
    if (stats.jobs_completed == 0) continue;
    if (first == nullptr) first = &stats;
    last = &stats;
  }
  if (first == nullptr || first == last) return 0.0;
  return first->MeanWriteReduction() - last->MeanWriteReduction();
}

}  // namespace approxmem::service
