// Scripted request traces for the sort service: generation and shrinking.
//
// A RequestTrace is the service's whole input — an ordered sequence of
// arrival bursts, each a list of SortRequests. Traces are pure functions
// of a TraceGenOptions seed, so any service failure replays from (options,
// seed) alone, and ShrinkTrace greedily minimizes a failing trace the same
// way the property runner shrinks oracle cases (see TESTING.md).
#ifndef APPROXMEM_SERVICE_SERVICE_TRACE_H_
#define APPROXMEM_SERVICE_SERVICE_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/job_plan.h"
#include "core/workload.h"
#include "sort/sort_common.h"

namespace approxmem::service {

/// One sort job as a client would phrase it: a core::SortJob (job class,
/// algorithm, workload, n, seed) addressed to a tenant. The service
/// generates the input keys itself from (workload, n, seed) — the trace
/// driver ships no payload bytes, matching the scripted no-network setup.
struct SortRequest : core::SortJob {
  std::string tenant;

  /// "tenant-a lsd3/uniform n=1024 seed=1" (in-memory) or
  /// "tenant-a extsort lsd3/uniform n=1024 seed=1" — paste-able repro
  /// label.
  std::string Name() const;
};

/// Bursty arrival script: burst k's requests all arrive before any job of
/// burst k+1. The service admits and runs batches between bursts.
struct RequestTrace {
  std::vector<std::vector<SortRequest>> bursts;

  size_t TotalJobs() const;
};

struct TraceGenOptions {
  uint64_t seed = 1;
  /// Tenant names requests are drawn over; must be non-empty and match the
  /// tenants registered with the service.
  std::vector<std::string> tenants;
  size_t bursts = 4;
  /// Burst sizes are drawn uniformly from [1, max_burst_jobs] — the bursty
  /// arrival pattern admission control has to absorb.
  size_t max_burst_jobs = 8;
  size_t min_n = 16;
  size_t max_n = 512;
  /// Algorithm pool; empty draws from sort::StudyAlgorithms().
  std::vector<sort::AlgorithmId> algorithms;
  /// Workload pool; empty draws from all five WorkloadKinds.
  std::vector<core::WorkloadKind> workloads;
  /// Probability in [0, 1] that a job is an out-of-core (extsort) job.
  /// 0 draws nothing from the class RNG, so traces generated before the
  /// job-class split replay byte-identically.
  double extsort_fraction = 0.0;
};

/// The deterministic random trace at `options.seed`.
RequestTrace MakeRandomTrace(const TraceGenOptions& options);

/// Greedy shrink: repeatedly tries smaller variants — dropping a burst,
/// dropping a single job, halving a job's n — and keeps any variant for
/// which `still_fails` returns true, until a local minimum or `max_steps`.
RequestTrace ShrinkTrace(const RequestTrace& trace,
                         const std::function<bool(const RequestTrace&)>&
                             still_fails,
                         size_t max_steps = 64);

/// Multi-line human-readable form of `trace` for failure reports.
std::string TraceToString(const RequestTrace& trace);

}  // namespace approxmem::service

#endif  // APPROXMEM_SERVICE_SERVICE_TRACE_H_
