#include "mlc/word_codec.h"

#include <cstdlib>

#include "common/check.h"

namespace approxmem::mlc {

WordLevels EncodeWord(uint32_t word, const MlcConfig& config) {
  const int bits = config.BitsPerCell();
  const int cells = config.CellsPerWord();
  const uint32_t mask = (bits == 32) ? ~0u : ((1u << bits) - 1u);
  WordLevels levels{};
  for (int c = 0; c < cells; ++c) {
    const int shift = (cells - 1 - c) * bits;
    levels[static_cast<size_t>(c)] =
        static_cast<uint8_t>((word >> shift) & mask);
  }
  return levels;
}

uint32_t DecodeWord(const WordLevels& levels, const MlcConfig& config) {
  const int bits = config.BitsPerCell();
  const int cells = config.CellsPerWord();
  uint32_t word = 0;
  for (int c = 0; c < cells; ++c) {
    word = (word << bits) | levels[static_cast<size_t>(c)];
  }
  return word;
}

uint32_t CellFlipMagnitude(uint32_t word, int cell_index, int new_level,
                           const MlcConfig& config) {
  APPROXMEM_CHECK(cell_index >= 0 && cell_index < config.CellsPerWord());
  APPROXMEM_CHECK(new_level >= 0 && new_level < config.levels);
  WordLevels levels = EncodeWord(word, config);
  levels[static_cast<size_t>(cell_index)] = static_cast<uint8_t>(new_level);
  const uint32_t flipped = DecodeWord(levels, config);
  return flipped > word ? flipped - word : word - flipped;
}

}  // namespace approxmem::mlc
