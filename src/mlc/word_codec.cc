#include "mlc/word_codec.h"

#include <cstdlib>

#include "common/check.h"

namespace approxmem::mlc {

WordLevels EncodeWord(uint32_t word, const MlcConfig& config) {
  WordLevels levels{};
  EncodeWords(&word, 1, config, levels.data());
  return levels;
}

uint32_t DecodeWord(const WordLevels& levels, const MlcConfig& config) {
  uint32_t word = 0;
  DecodeWords(levels.data(), 1, config, &word);
  return word;
}

void EncodeWords(const uint32_t* words, size_t count, const MlcConfig& config,
                 uint8_t* levels_out) {
  const int bits = config.BitsPerCell();
  const int cells = config.CellsPerWord();
  if (bits == 2 && cells == 16) {
    // The paper's 2-bit MLC layout: flat, fully unrollable 16-lane kernel.
    for (size_t w = 0; w < count; ++w) {
      const uint32_t word = words[w];
      uint8_t* out = levels_out + w * 16;
      for (int c = 0; c < 16; ++c) {
        out[c] = static_cast<uint8_t>((word >> (30 - 2 * c)) & 0x3u);
      }
    }
    return;
  }
  const uint32_t mask = (bits == 32) ? ~0u : ((1u << bits) - 1u);
  for (size_t w = 0; w < count; ++w) {
    const uint32_t word = words[w];
    uint8_t* out = levels_out + w * static_cast<size_t>(cells);
    for (int c = 0; c < cells; ++c) {
      out[c] = static_cast<uint8_t>((word >> ((cells - 1 - c) * bits)) & mask);
    }
  }
}

void DecodeWords(const uint8_t* levels, size_t count, const MlcConfig& config,
                 uint32_t* words_out) {
  const int bits = config.BitsPerCell();
  const int cells = config.CellsPerWord();
  if (bits == 2 && cells == 16) {
    for (size_t w = 0; w < count; ++w) {
      const uint8_t* in = levels + w * 16;
      uint32_t word = 0;
      for (int c = 0; c < 16; ++c) {
        word |= static_cast<uint32_t>(in[c] & 0x3u) << (30 - 2 * c);
      }
      words_out[w] = word;
    }
    return;
  }
  for (size_t w = 0; w < count; ++w) {
    const uint8_t* in = levels + w * static_cast<size_t>(cells);
    uint32_t word = 0;
    for (int c = 0; c < cells; ++c) {
      word = (word << bits) | in[c];
    }
    words_out[w] = word;
  }
}

uint32_t CellFlipMagnitude(uint32_t word, int cell_index, int new_level,
                           const MlcConfig& config) {
  APPROXMEM_CHECK(cell_index >= 0 && cell_index < config.CellsPerWord());
  APPROXMEM_CHECK(new_level >= 0 && new_level < config.levels);
  WordLevels levels{};
  EncodeWords(&word, 1, config, levels.data());
  levels[static_cast<size_t>(cell_index)] = static_cast<uint8_t>(new_level);
  uint32_t flipped = 0;
  DecodeWords(levels.data(), 1, config, &flipped);
  return flipped > word ? flipped - word : word - flipped;
}

}  // namespace approxmem::mlc
