// Single-cell write/read primitives: the Function WRITE program-and-verify
// loop and the drift read model of Section 2.1.
#ifndef APPROXMEM_MLC_CELL_H_
#define APPROXMEM_MLC_CELL_H_

#include <cstdint>

#include "common/random.h"
#include "mlc/mlc_config.h"

namespace approxmem::mlc {

/// Outcome of one cell write: the analog value left in the cell and the
/// number of program-and-verify iterations spent (write latency ~ #P).
struct CellWriteResult {
  double analog = 0.0;
  uint32_t iterations = 0;
};

/// Programs `target_level` into a cell using the iterative P&V loop:
///   v <- 0; repeat v <- v + N(vd - v, (beta*|vd - v|)^2)
/// until v lands in [vd - T, vd + T]. Matches Function WRITE in the paper.
CellWriteResult WriteCell(int target_level, const MlcConfig& config, Rng& rng);

/// Applies the read perturbation: analog + N(mu_d, sigma_d^2) * log10(tw).
/// Drift is unidirectional (toward larger values), as in Section 2.1.2.
double ApplyReadDrift(double analog, const MlcConfig& config, Rng& rng);

/// Reads a cell: perturbs the stored analog value and quantizes it.
int ReadCell(double analog, const MlcConfig& config, Rng& rng);

}  // namespace approxmem::mlc

#endif  // APPROXMEM_MLC_CELL_H_
