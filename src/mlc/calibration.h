// Monte-Carlo calibration of the cell model.
//
// The exact simulation path draws O(#P) normal samples per cell write, which
// is faithful but slow for 16M-element sorts. Calibration runs the exact
// model once per (config, T) and summarizes it as:
//   * avg #P per written level (write latency),
//   * the distribution of the digital level read back per written level
//     (error injection),
// which the fast path then samples with one uniform draw per cell (and, in
// the common all-correct case, one draw per word). Tests verify the fast
// path is statistically indistinguishable from the exact path.
//
// Calibration is embarrassingly parallel: trials are split into fixed-size
// shards, each drawing from its own Rng::Split()-derived substream keyed by
// (level, shard index), so the merged result is bit-identical for every
// thread count — including fully serial execution.
#ifndef APPROXMEM_MLC_CALIBRATION_H_
#define APPROXMEM_MLC_CALIBRATION_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "mlc/mlc_config.h"

namespace approxmem {
class ThreadPool;
}  // namespace approxmem

namespace approxmem::mlc {

/// Summary of the exact cell model at one configuration.
class CellCalibration {
 public:
  /// Runs `trials_per_level` exact write+read simulations per level,
  /// seeding the shard substreams from one draw of `rng` (serial
  /// convenience API; equivalent to the seed overload below).
  static CellCalibration Run(const MlcConfig& config,
                             uint64_t trials_per_level, Rng& rng);

  /// Deterministic, optionally parallel calibration. Shards run on `pool`
  /// when given (nullptr = serial); the result depends only on (config,
  /// trials_per_level, seed), never on the thread count or schedule.
  static CellCalibration Run(const MlcConfig& config,
                             uint64_t trials_per_level, uint64_t seed,
                             ThreadPool* pool = nullptr);

  const MlcConfig& config() const { return config_; }
  uint64_t trials_per_level() const { return trials_per_level_; }

  /// Average number of P&V iterations for writes of `level`.
  double AvgPvForLevel(int level) const;

  /// Average #P over uniformly random target levels (paper Fig. 2(a)).
  double AvgPv() const { return avg_pv_; }

  /// Probability that a write of `level` reads back as a different level.
  double ErrorProbForLevel(int level) const;

  /// Error probability of a cell written with a uniformly random level
  /// (paper Fig. 2(b), "2-bit" curve).
  double CellErrorRate() const { return cell_error_rate_; }

  /// Probability that at least one of `cells` independent random-level cells
  /// reads back wrong (paper Fig. 2(b), "32-bit" curve for cells = 16).
  double WordErrorRate(int cells) const;

  /// Samples the level read back after writing `level` (fast path).
  int SampleReadLevel(int level, Rng& rng) const;

  /// Samples a #P count for a write of `level` from the empirical
  /// distribution (fast path latency jitter; the mean matches AvgPvForLevel).
  uint32_t SamplePvIterations(int level, Rng& rng) const;

  /// Serializes the calibration as one text record to `out`.
  void Serialize(std::FILE* out) const;

  /// Parses one record written by Serialize. Returns InvalidArgument on
  /// malformed input.
  static StatusOr<CellCalibration> Deserialize(std::FILE* in);

 private:
  MlcConfig config_;
  uint64_t trials_per_level_ = 0;
  double avg_pv_ = 0.0;
  double cell_error_rate_ = 0.0;
  std::vector<double> avg_pv_per_level_;
  std::vector<double> error_prob_per_level_;
  // Row-major [written][read] cumulative distribution for fast sampling.
  std::vector<double> read_level_cdf_;
  // Per-level empirical #P distribution: cdf over iteration counts 1..kMaxPv.
  static constexpr int kMaxPvBucket = 64;
  std::vector<double> pv_cdf_;
};

/// Batched fast-path word statistics derived from one CellCalibration: the
/// per-word expected #P sum and no-error probability that the fast PCM
/// write model needs for every written word, plus a block-uniform scan for
/// the first erring word of a batch.
///
/// For the paper's 16x2-bit layout the per-cell tables are folded into
/// 256-entry per-byte partials (4 table lookups per word instead of 16 cell
/// loops); other layouts fall back to the batched codec plus a per-cell
/// loop. Both paths accumulate in a fixed order, so batch results are
/// bit-identical to calling StatsFor word by word.
class BatchErrorSampler {
 public:
  explicit BatchErrorSampler(const CellCalibration& calibration);

  struct WordStats {
    double pv_sum = 0.0;    // Expected #P summed over the word's cells.
    double no_error = 1.0;  // Probability every cell reads back correct.
  };

  /// Stats for one word.
  WordStats StatsFor(uint32_t word) const;

  /// Stats for `count` words at once (vectorizable table-lookup kernel on
  /// the 16x2-bit fast layout).
  void StatsForWords(const uint32_t* words, size_t count,
                     WordStats* out) const;

  bool fast_layout() const { return fast_layout_; }

  /// Scans `word_error[0, count)` for the first word whose uniform draw
  /// lands below its error probability. Words with word_error <= 0 draw
  /// nothing; each drawing word consumes exactly one UniformDouble, pulled
  /// from the stream in blocks (one RNG refill per block) but replayed so
  /// the consumed sequence is identical to the per-word loop. Returns the
  /// erring index with the stream positioned just past that word's draw, or
  /// `count` with every drawing word's uniform consumed.
  static size_t FirstCorrupted(const double* word_error, size_t count,
                               Rng& rng);

 private:
  MlcConfig config_;
  bool fast_layout_ = false;
  // Per-level tables (any layout).
  std::vector<double> stay_prob_;
  std::vector<double> avg_pv_;
  // Per-byte partials for the 16x2-bit layout: sum of avg #P / product of
  // stay probabilities over the byte's four 2-bit levels, accumulated in
  // cell order.
  std::vector<double> pv_byte_;
  std::vector<double> stay_byte_;
};

/// Lazily calibrates and caches per-T calibrations for a fixed base config.
/// Keys are the exact T bit patterns, so sweeps over a T grid reuse entries.
///
/// Thread-safe: concurrent ForT calls may share one cache. Each T is
/// calibrated at most once (per-entry locking; the computation runs outside
/// the map lock), and every entry's substream seed is derived from
/// (cache seed, T) alone, so the cached values are independent of the order
/// in which Ts are requested and of which thread computes them.
class CalibrationCache {
 public:
  /// `trials_per_level` trades calibration accuracy for startup time.
  /// `pool`, when non-null, parallelizes each entry's Monte-Carlo shards;
  /// it must outlive the cache.
  explicit CalibrationCache(MlcConfig base_config,
                            uint64_t trials_per_level = 200000,
                            uint64_t seed = 0xca11b7a7e5eedULL,
                            ThreadPool* pool = nullptr);

  /// Sets the shard pool. Not thread-safe; call before sharing the cache.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Returns the calibration for the base config with t_width = t.
  /// Thread-safe; the returned reference stays valid for the cache's
  /// lifetime.
  const CellCalibration& ForT(double t);

  /// p(t) of Section 2.2: avg #P at `t` divided by avg #P at the precise T.
  double PvRatio(double t);

  /// Persists every cached calibration to `path` (overwrites). Returns
  /// false on I/O failure. Loading on a later run skips recalibration for
  /// matching configurations — useful for --full-scale bench runs.
  bool SaveToFile(const std::string& path) const;

  /// Pre-populates the cache from a file written by SaveToFile. Entries
  /// whose configuration does not match the base config (ignoring T and
  /// trial count) are skipped. Returns the number of entries loaded.
  StatusOr<size_t> LoadFromFile(const std::string& path);

 private:
  // One cached T: per-entry lock so distinct Ts calibrate concurrently
  // while a second request for the same T blocks until it is ready.
  struct Entry {
    std::mutex mu;
    std::unique_ptr<CellCalibration> calibration;
  };

  uint64_t SeedForT(double t) const;

  MlcConfig base_config_;
  uint64_t trials_per_level_;
  uint64_t seed_;
  ThreadPool* pool_ = nullptr;
  mutable std::mutex mu_;  // Guards cache_ (the map, not the entries).
  std::map<double, std::unique_ptr<Entry>> cache_;
};

}  // namespace approxmem::mlc

#endif  // APPROXMEM_MLC_CALIBRATION_H_
