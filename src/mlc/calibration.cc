#include "mlc/calibration.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "common/check.h"
#include "mlc/cell.h"

namespace approxmem::mlc {

CellCalibration CellCalibration::Run(const MlcConfig& config,
                                     uint64_t trials_per_level, Rng& rng) {
  APPROXMEM_CHECK_OK(config.Validate());
  APPROXMEM_CHECK(trials_per_level > 0);

  const int levels = config.levels;
  CellCalibration calib;
  calib.config_ = config;
  calib.trials_per_level_ = trials_per_level;
  calib.avg_pv_per_level_.assign(static_cast<size_t>(levels), 0.0);
  calib.error_prob_per_level_.assign(static_cast<size_t>(levels), 0.0);
  calib.read_level_cdf_.assign(static_cast<size_t>(levels * levels), 0.0);
  calib.pv_cdf_.assign(static_cast<size_t>(levels * kMaxPvBucket), 0.0);

  std::vector<uint64_t> transition(static_cast<size_t>(levels * levels), 0);
  std::vector<uint64_t> pv_counts(static_cast<size_t>(levels * kMaxPvBucket),
                                  0);

  for (int written = 0; written < levels; ++written) {
    uint64_t pv_total = 0;
    for (uint64_t trial = 0; trial < trials_per_level; ++trial) {
      const CellWriteResult w = WriteCell(written, config, rng);
      const int read = ReadCell(w.analog, config, rng);
      pv_total += w.iterations;
      ++transition[static_cast<size_t>(written * levels + read)];
      const int bucket = std::min<int>(static_cast<int>(w.iterations),
                                       kMaxPvBucket) -
                         1;
      ++pv_counts[static_cast<size_t>(written * kMaxPvBucket +
                                      std::max(bucket, 0))];
    }
    calib.avg_pv_per_level_[static_cast<size_t>(written)] =
        static_cast<double>(pv_total) / static_cast<double>(trials_per_level);

    // Cumulative distributions for fast sampling.
    double cum = 0.0;
    for (int read = 0; read < levels; ++read) {
      cum += static_cast<double>(
                 transition[static_cast<size_t>(written * levels + read)]) /
             static_cast<double>(trials_per_level);
      calib.read_level_cdf_[static_cast<size_t>(written * levels + read)] =
          cum;
    }
    // Force the last entry to exactly 1 so sampling never falls off the end.
    calib.read_level_cdf_[static_cast<size_t>(written * levels + levels - 1)] =
        1.0;

    cum = 0.0;
    for (int b = 0; b < kMaxPvBucket; ++b) {
      cum += static_cast<double>(
                 pv_counts[static_cast<size_t>(written * kMaxPvBucket + b)]) /
             static_cast<double>(trials_per_level);
      calib.pv_cdf_[static_cast<size_t>(written * kMaxPvBucket + b)] = cum;
    }
    calib.pv_cdf_[static_cast<size_t>(written * kMaxPvBucket + kMaxPvBucket -
                                      1)] = 1.0;

    const double stay =
        static_cast<double>(
            transition[static_cast<size_t>(written * levels + written)]) /
        static_cast<double>(trials_per_level);
    calib.error_prob_per_level_[static_cast<size_t>(written)] = 1.0 - stay;
  }

  double pv_sum = 0.0;
  double err_sum = 0.0;
  for (int l = 0; l < levels; ++l) {
    pv_sum += calib.avg_pv_per_level_[static_cast<size_t>(l)];
    err_sum += calib.error_prob_per_level_[static_cast<size_t>(l)];
  }
  calib.avg_pv_ = pv_sum / levels;
  calib.cell_error_rate_ = err_sum / levels;
  return calib;
}

double CellCalibration::AvgPvForLevel(int level) const {
  APPROXMEM_CHECK(level >= 0 && level < config_.levels);
  return avg_pv_per_level_[static_cast<size_t>(level)];
}

double CellCalibration::ErrorProbForLevel(int level) const {
  APPROXMEM_CHECK(level >= 0 && level < config_.levels);
  return error_prob_per_level_[static_cast<size_t>(level)];
}

double CellCalibration::WordErrorRate(int cells) const {
  // Cells are independent and random-level, so the no-error probabilities
  // multiply.
  return 1.0 - std::pow(1.0 - cell_error_rate_, cells);
}

int CellCalibration::SampleReadLevel(int level, Rng& rng) const {
  const double u = rng.UniformDouble();
  const int levels = config_.levels;
  const double* row = &read_level_cdf_[static_cast<size_t>(level * levels)];
  for (int read = 0; read < levels - 1; ++read) {
    if (u < row[read]) return read;
  }
  return levels - 1;
}

uint32_t CellCalibration::SamplePvIterations(int level, Rng& rng) const {
  const double u = rng.UniformDouble();
  const double* row = &pv_cdf_[static_cast<size_t>(level * kMaxPvBucket)];
  for (int b = 0; b < kMaxPvBucket - 1; ++b) {
    if (u < row[b]) return static_cast<uint32_t>(b + 1);
  }
  return kMaxPvBucket;
}

void CellCalibration::Serialize(std::FILE* out) const {
  std::fprintf(out, "calibration v1\n");
  std::fprintf(out, "%d %.17g %.17g %.17g %.17g %.17g %u %llu\n",
               config_.levels, config_.beta, config_.t_width,
               config_.drift_mu_per_decade, config_.drift_sigma_per_decade,
               config_.elapsed_seconds, config_.max_pv_iterations,
               static_cast<unsigned long long>(trials_per_level_));
  std::fprintf(out, "%.17g %.17g\n", avg_pv_, cell_error_rate_);
  auto write_vector = [out](const std::vector<double>& values) {
    std::fprintf(out, "%zu", values.size());
    for (const double v : values) std::fprintf(out, " %.17g", v);
    std::fprintf(out, "\n");
  };
  write_vector(avg_pv_per_level_);
  write_vector(error_prob_per_level_);
  write_vector(read_level_cdf_);
  write_vector(pv_cdf_);
}

StatusOr<CellCalibration> CellCalibration::Deserialize(std::FILE* in) {
  char header[32] = {};
  if (std::fscanf(in, "%31[^\n]\n", header) != 1 ||
      std::string_view(header) != "calibration v1") {
    return Status::InvalidArgument("bad calibration header");
  }
  CellCalibration calib;
  unsigned long long trials = 0;
  if (std::fscanf(in, "%d %lg %lg %lg %lg %lg %u %llu\n",
                  &calib.config_.levels, &calib.config_.beta,
                  &calib.config_.t_width, &calib.config_.drift_mu_per_decade,
                  &calib.config_.drift_sigma_per_decade,
                  &calib.config_.elapsed_seconds,
                  &calib.config_.max_pv_iterations, &trials) != 8) {
    return Status::InvalidArgument("bad calibration config line");
  }
  calib.trials_per_level_ = trials;
  if (std::fscanf(in, "%lg %lg\n", &calib.avg_pv_,
                  &calib.cell_error_rate_) != 2) {
    return Status::InvalidArgument("bad calibration summary line");
  }
  auto read_vector = [in](std::vector<double>* values) {
    size_t count = 0;
    if (std::fscanf(in, "%zu", &count) != 1 || count > (1u << 24)) {
      return false;
    }
    values->resize(count);
    for (double& v : *values) {
      if (std::fscanf(in, "%lg", &v) != 1) return false;
    }
    return true;
  };
  if (!read_vector(&calib.avg_pv_per_level_) ||
      !read_vector(&calib.error_prob_per_level_) ||
      !read_vector(&calib.read_level_cdf_) ||
      !read_vector(&calib.pv_cdf_)) {
    return Status::InvalidArgument("bad calibration vectors");
  }
  const Status valid = calib.config_.Validate();
  if (!valid.ok()) return valid;
  const size_t levels = static_cast<size_t>(calib.config_.levels);
  if (calib.avg_pv_per_level_.size() != levels ||
      calib.error_prob_per_level_.size() != levels ||
      calib.read_level_cdf_.size() != levels * levels ||
      calib.pv_cdf_.size() != levels * kMaxPvBucket) {
    return Status::InvalidArgument("calibration vector sizes inconsistent");
  }
  // Eat the trailing newline so the next record starts clean.
  std::fscanf(in, "\n");
  return calib;
}

CalibrationCache::CalibrationCache(MlcConfig base_config,
                                   uint64_t trials_per_level, uint64_t seed)
    : base_config_(base_config),
      trials_per_level_(trials_per_level),
      rng_(seed) {}

const CellCalibration& CalibrationCache::ForT(double t) {
  auto it = cache_.find(t);
  if (it == cache_.end()) {
    const MlcConfig config = base_config_.WithT(t);
    auto calib = std::make_unique<CellCalibration>(
        CellCalibration::Run(config, trials_per_level_, rng_));
    it = cache_.emplace(t, std::move(calib)).first;
  }
  return *it->second;
}

double CalibrationCache::PvRatio(double t) {
  const double precise = ForT(base_config_.precise_t_width).AvgPv();
  return ForT(t).AvgPv() / precise;
}

bool CalibrationCache::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "approxmem-calibrations v1 %zu\n", cache_.size());
  for (const auto& [t, calib] : cache_) calib->Serialize(f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

StatusOr<size_t> CalibrationCache::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open calibration file: " + path);
  }
  size_t count = 0;
  if (std::fscanf(f, "approxmem-calibrations v1 %zu\n", &count) != 1) {
    std::fclose(f);
    return Status::InvalidArgument("bad calibration file header");
  }
  size_t loaded = 0;
  for (size_t i = 0; i < count; ++i) {
    StatusOr<CellCalibration> calib = CellCalibration::Deserialize(f);
    if (!calib.ok()) {
      std::fclose(f);
      return calib.status();
    }
    // Only adopt entries whose model parameters match this cache's base
    // configuration (T varies per entry by design).
    const MlcConfig& config = calib->config();
    const MlcConfig& base = base_config_;
    const bool compatible =
        config.levels == base.levels && config.beta == base.beta &&
        config.drift_mu_per_decade == base.drift_mu_per_decade &&
        config.drift_sigma_per_decade == base.drift_sigma_per_decade &&
        config.elapsed_seconds == base.elapsed_seconds;
    if (compatible && cache_.count(config.t_width) == 0) {
      cache_.emplace(config.t_width, std::make_unique<CellCalibration>(
                                         std::move(calib.value())));
      ++loaded;
    }
  }
  std::fclose(f);
  return loaded;
}

}  // namespace approxmem::mlc
