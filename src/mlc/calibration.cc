#include "mlc/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "mlc/cell.h"
#include "mlc/word_codec.h"

namespace approxmem::mlc {
namespace {

// Trials per calibration shard. The shard layout depends only on the trial
// count (never on the thread count), so merged counts — and therefore every
// derived statistic — are bit-identical for any schedule.
constexpr uint64_t kShardTrials = 4096;

// SplitMix64 finalizer; used to derive per-T substream seeds.
uint64_t MixSeed(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CellCalibration CellCalibration::Run(const MlcConfig& config,
                                     uint64_t trials_per_level, Rng& rng) {
  return Run(config, trials_per_level, rng.Next64(), /*pool=*/nullptr);
}

CellCalibration CellCalibration::Run(const MlcConfig& config,
                                     uint64_t trials_per_level, uint64_t seed,
                                     ThreadPool* pool) {
  APPROXMEM_CHECK_OK(config.Validate());
  APPROXMEM_CHECK(trials_per_level > 0);

  const int levels = config.levels;
  CellCalibration calib;
  calib.config_ = config;
  calib.trials_per_level_ = trials_per_level;
  calib.avg_pv_per_level_.assign(static_cast<size_t>(levels), 0.0);
  calib.error_prob_per_level_.assign(static_cast<size_t>(levels), 0.0);
  calib.read_level_cdf_.assign(static_cast<size_t>(levels * levels), 0.0);
  calib.pv_cdf_.assign(static_cast<size_t>(levels * kMaxPvBucket), 0.0);

  // Fixed work decomposition: each (level, shard) slice owns a substream
  // split off in a fixed order, independent of how shards are scheduled.
  struct Shard {
    int level = 0;
    uint64_t trials = 0;
    Rng rng{0};
    uint64_t pv_total = 0;
    std::vector<uint64_t> transition;  // Indexed by read level.
    std::vector<uint64_t> pv_counts;   // Indexed by #P bucket.
  };
  const uint64_t shards_per_level =
      (trials_per_level + kShardTrials - 1) / kShardTrials;
  std::vector<Shard> shards;
  shards.reserve(static_cast<size_t>(levels) * shards_per_level);
  Rng root(seed);
  for (int level = 0; level < levels; ++level) {
    Rng level_stream = root.Split();
    for (uint64_t s = 0; s < shards_per_level; ++s) {
      Shard shard;
      shard.level = level;
      shard.trials =
          std::min<uint64_t>(kShardTrials, trials_per_level - s * kShardTrials);
      shard.rng = level_stream.Split();
      shards.push_back(std::move(shard));
    }
  }

  auto run_shard = [&config, levels](Shard& shard) {
    shard.transition.assign(static_cast<size_t>(levels), 0);
    shard.pv_counts.assign(static_cast<size_t>(kMaxPvBucket), 0);
    for (uint64_t trial = 0; trial < shard.trials; ++trial) {
      const CellWriteResult w = WriteCell(shard.level, config, shard.rng);
      const int read = ReadCell(w.analog, config, shard.rng);
      shard.pv_total += w.iterations;
      ++shard.transition[static_cast<size_t>(read)];
      const int bucket = std::min<int>(static_cast<int>(w.iterations),
                                       kMaxPvBucket) -
                         1;
      ++shard.pv_counts[static_cast<size_t>(std::max(bucket, 0))];
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, shards.size(),
                      [&](size_t i) { run_shard(shards[i]); });
  } else {
    for (Shard& shard : shards) run_shard(shard);
  }

  // Merge shard counts. Integer sums are order-independent, so the merge is
  // deterministic regardless of shard completion order.
  std::vector<uint64_t> transition(static_cast<size_t>(levels * levels), 0);
  std::vector<uint64_t> pv_counts(static_cast<size_t>(levels * kMaxPvBucket),
                                  0);
  std::vector<uint64_t> pv_totals(static_cast<size_t>(levels), 0);
  for (const Shard& shard : shards) {
    pv_totals[static_cast<size_t>(shard.level)] += shard.pv_total;
    for (int read = 0; read < levels; ++read) {
      transition[static_cast<size_t>(shard.level * levels + read)] +=
          shard.transition[static_cast<size_t>(read)];
    }
    for (int b = 0; b < kMaxPvBucket; ++b) {
      pv_counts[static_cast<size_t>(shard.level * kMaxPvBucket + b)] +=
          shard.pv_counts[static_cast<size_t>(b)];
    }
  }

  for (int written = 0; written < levels; ++written) {
    calib.avg_pv_per_level_[static_cast<size_t>(written)] =
        static_cast<double>(pv_totals[static_cast<size_t>(written)]) /
        static_cast<double>(trials_per_level);

    // Cumulative distributions for fast sampling.
    double cum = 0.0;
    for (int read = 0; read < levels; ++read) {
      cum += static_cast<double>(
                 transition[static_cast<size_t>(written * levels + read)]) /
             static_cast<double>(trials_per_level);
      calib.read_level_cdf_[static_cast<size_t>(written * levels + read)] =
          cum;
    }
    // Force the last entry to exactly 1 so sampling never falls off the end.
    calib.read_level_cdf_[static_cast<size_t>(written * levels + levels - 1)] =
        1.0;

    cum = 0.0;
    for (int b = 0; b < kMaxPvBucket; ++b) {
      cum += static_cast<double>(
                 pv_counts[static_cast<size_t>(written * kMaxPvBucket + b)]) /
             static_cast<double>(trials_per_level);
      calib.pv_cdf_[static_cast<size_t>(written * kMaxPvBucket + b)] = cum;
    }
    calib.pv_cdf_[static_cast<size_t>(written * kMaxPvBucket + kMaxPvBucket -
                                      1)] = 1.0;

    const double stay =
        static_cast<double>(
            transition[static_cast<size_t>(written * levels + written)]) /
        static_cast<double>(trials_per_level);
    calib.error_prob_per_level_[static_cast<size_t>(written)] = 1.0 - stay;
  }

  double pv_sum = 0.0;
  double err_sum = 0.0;
  for (int l = 0; l < levels; ++l) {
    pv_sum += calib.avg_pv_per_level_[static_cast<size_t>(l)];
    err_sum += calib.error_prob_per_level_[static_cast<size_t>(l)];
  }
  calib.avg_pv_ = pv_sum / levels;
  calib.cell_error_rate_ = err_sum / levels;
  return calib;
}

double CellCalibration::AvgPvForLevel(int level) const {
  APPROXMEM_CHECK(level >= 0 && level < config_.levels);
  return avg_pv_per_level_[static_cast<size_t>(level)];
}

double CellCalibration::ErrorProbForLevel(int level) const {
  APPROXMEM_CHECK(level >= 0 && level < config_.levels);
  return error_prob_per_level_[static_cast<size_t>(level)];
}

double CellCalibration::WordErrorRate(int cells) const {
  // Cells are independent and random-level, so the no-error probabilities
  // multiply.
  return 1.0 - std::pow(1.0 - cell_error_rate_, cells);
}

int CellCalibration::SampleReadLevel(int level, Rng& rng) const {
  const double u = rng.UniformDouble();
  const int levels = config_.levels;
  const double* row = &read_level_cdf_[static_cast<size_t>(level * levels)];
  for (int read = 0; read < levels - 1; ++read) {
    if (u < row[read]) return read;
  }
  return levels - 1;
}

uint32_t CellCalibration::SamplePvIterations(int level, Rng& rng) const {
  const double u = rng.UniformDouble();
  const double* row = &pv_cdf_[static_cast<size_t>(level * kMaxPvBucket)];
  for (int b = 0; b < kMaxPvBucket - 1; ++b) {
    if (u < row[b]) return static_cast<uint32_t>(b + 1);
  }
  return kMaxPvBucket;
}

void CellCalibration::Serialize(std::FILE* out) const {
  std::fprintf(out, "calibration v1\n");
  std::fprintf(out, "%d %.17g %.17g %.17g %.17g %.17g %u %llu\n",
               config_.levels, config_.beta, config_.t_width,
               config_.drift_mu_per_decade, config_.drift_sigma_per_decade,
               config_.elapsed_seconds, config_.max_pv_iterations,
               static_cast<unsigned long long>(trials_per_level_));
  std::fprintf(out, "%.17g %.17g\n", avg_pv_, cell_error_rate_);
  auto write_vector = [out](const std::vector<double>& values) {
    std::fprintf(out, "%zu", values.size());
    for (const double v : values) std::fprintf(out, " %.17g", v);
    std::fprintf(out, "\n");
  };
  write_vector(avg_pv_per_level_);
  write_vector(error_prob_per_level_);
  write_vector(read_level_cdf_);
  write_vector(pv_cdf_);
}

StatusOr<CellCalibration> CellCalibration::Deserialize(std::FILE* in) {
  char header[32] = {};
  if (std::fscanf(in, "%31[^\n]\n", header) != 1 ||
      std::string_view(header) != "calibration v1") {
    return Status::InvalidArgument("bad calibration header");
  }
  CellCalibration calib;
  unsigned long long trials = 0;
  if (std::fscanf(in, "%d %lg %lg %lg %lg %lg %u %llu\n",
                  &calib.config_.levels, &calib.config_.beta,
                  &calib.config_.t_width, &calib.config_.drift_mu_per_decade,
                  &calib.config_.drift_sigma_per_decade,
                  &calib.config_.elapsed_seconds,
                  &calib.config_.max_pv_iterations, &trials) != 8) {
    return Status::InvalidArgument("bad calibration config line");
  }
  calib.trials_per_level_ = trials;
  if (std::fscanf(in, "%lg %lg\n", &calib.avg_pv_,
                  &calib.cell_error_rate_) != 2) {
    return Status::InvalidArgument("bad calibration summary line");
  }
  auto read_vector = [in](std::vector<double>* values) {
    size_t count = 0;
    if (std::fscanf(in, "%zu", &count) != 1 || count > (1u << 24)) {
      return false;
    }
    values->resize(count);
    for (double& v : *values) {
      if (std::fscanf(in, "%lg", &v) != 1) return false;
    }
    return true;
  };
  if (!read_vector(&calib.avg_pv_per_level_) ||
      !read_vector(&calib.error_prob_per_level_) ||
      !read_vector(&calib.read_level_cdf_) ||
      !read_vector(&calib.pv_cdf_)) {
    return Status::InvalidArgument("bad calibration vectors");
  }
  const Status valid = calib.config_.Validate();
  if (!valid.ok()) return valid;
  const size_t levels = static_cast<size_t>(calib.config_.levels);
  if (calib.avg_pv_per_level_.size() != levels ||
      calib.error_prob_per_level_.size() != levels ||
      calib.read_level_cdf_.size() != levels * levels ||
      calib.pv_cdf_.size() != levels * kMaxPvBucket) {
    return Status::InvalidArgument("calibration vector sizes inconsistent");
  }
  // Eat the trailing newline so the next record starts clean.
  std::fscanf(in, "\n");
  return calib;
}

BatchErrorSampler::BatchErrorSampler(const CellCalibration& calibration)
    : config_(calibration.config()) {
  const int levels = config_.levels;
  stay_prob_.resize(static_cast<size_t>(levels));
  avg_pv_.resize(static_cast<size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    stay_prob_[static_cast<size_t>(l)] =
        1.0 - calibration.ErrorProbForLevel(l);
    avg_pv_[static_cast<size_t>(l)] = calibration.AvgPvForLevel(l);
  }
  fast_layout_ = config_.BitsPerCell() == 2 && config_.CellsPerWord() == 16;
  if (fast_layout_) {
    pv_byte_.resize(256);
    stay_byte_.resize(256);
    for (int b = 0; b < 256; ++b) {
      // Accumulate the byte's four 2-bit levels in cell order (MSB-first),
      // matching the order StatsFor folds bytes in, so the full-word sums
      // and products are evaluated left to right over all 16 cells.
      double pv = 0.0;
      double stay = 1.0;
      for (int c = 0; c < 4; ++c) {
        const size_t level = static_cast<size_t>((b >> (6 - 2 * c)) & 0x3);
        pv += avg_pv_[level];
        stay *= stay_prob_[level];
      }
      pv_byte_[static_cast<size_t>(b)] = pv;
      stay_byte_[static_cast<size_t>(b)] = stay;
    }
  }
}

BatchErrorSampler::WordStats BatchErrorSampler::StatsFor(
    uint32_t word) const {
  WordStats stats;
  StatsForWords(&word, 1, &stats);
  return stats;
}

void BatchErrorSampler::StatsForWords(const uint32_t* words, size_t count,
                                      WordStats* out) const {
  if (fast_layout_) {
    for (size_t w = 0; w < count; ++w) {
      const uint32_t word = words[w];
      const size_t b0 = (word >> 24) & 0xffu;
      const size_t b1 = (word >> 16) & 0xffu;
      const size_t b2 = (word >> 8) & 0xffu;
      const size_t b3 = word & 0xffu;
      out[w].pv_sum = ((pv_byte_[b0] + pv_byte_[b1]) + pv_byte_[b2]) +
                      pv_byte_[b3];
      out[w].no_error = ((stay_byte_[b0] * stay_byte_[b1]) * stay_byte_[b2]) *
                        stay_byte_[b3];
    }
    return;
  }
  const int cells = config_.CellsPerWord();
  constexpr size_t kChunkWords = 32;
  uint8_t levels[kChunkWords * static_cast<size_t>(kMaxCellsPerWord)];
  for (size_t done = 0; done < count; done += kChunkWords) {
    const size_t chunk = std::min(count - done, kChunkWords);
    EncodeWords(words + done, chunk, config_, levels);
    for (size_t w = 0; w < chunk; ++w) {
      const uint8_t* cell_levels = levels + w * static_cast<size_t>(cells);
      double pv = 0.0;
      double stay = 1.0;
      for (int c = 0; c < cells; ++c) {
        const size_t level = cell_levels[c];
        pv += avg_pv_[level];
        stay *= stay_prob_[level];
      }
      out[done + w].pv_sum = pv;
      out[done + w].no_error = stay;
    }
  }
}

size_t BatchErrorSampler::FirstCorrupted(const double* word_error,
                                         size_t count, Rng& rng) {
  constexpr size_t kBlock = 64;
  double uniforms[kBlock];
  size_t drawing[kBlock];
  size_t scan = 0;
  while (scan < count) {
    // Collect the next block of words that actually draw.
    size_t m = 0;
    while (scan < count && m < kBlock) {
      if (word_error[scan] > 0.0) drawing[m++] = scan;
      ++scan;
    }
    if (m == 0) return count;
    const Rng snapshot = rng;  // Rng is trivially copyable by design.
    rng.FillUniformDoubles(uniforms, m);
    for (size_t k = 0; k < m; ++k) {
      if (uniforms[k] < word_error[drawing[k]]) {
        // Rewind and replay exactly k+1 draws so the stream sits where the
        // per-word loop would leave it after this word's uniform.
        rng = snapshot;
        for (size_t r = 0; r <= k; ++r) rng.UniformDouble();
        return drawing[k];
      }
    }
  }
  return count;
}

CalibrationCache::CalibrationCache(MlcConfig base_config,
                                   uint64_t trials_per_level, uint64_t seed,
                                   ThreadPool* pool)
    : base_config_(base_config),
      trials_per_level_(trials_per_level),
      seed_(seed),
      pool_(pool) {}

uint64_t CalibrationCache::SeedForT(double t) const {
  // Key each entry's substream by (cache seed, T bit pattern) so cached
  // values are independent of request order and of the requesting thread.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(t));
  std::memcpy(&bits, &t, sizeof(bits));
  return MixSeed(seed_ ^ (bits + 0x9e3779b97f4a7c15ULL));
}

const CellCalibration& CalibrationCache::ForT(double t) {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Entry>& slot = cache_[t];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  // Calibrate outside the map lock: distinct Ts proceed concurrently, a
  // second request for the same T blocks here until the first finishes.
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->calibration == nullptr) {
    entry->calibration = std::make_unique<CellCalibration>(CellCalibration::Run(
        base_config_.WithT(t), trials_per_level_, SeedForT(t), pool_));
  }
  return *entry->calibration;
}

double CalibrationCache::PvRatio(double t) {
  const double precise = ForT(base_config_.precise_t_width).AvgPv();
  return ForT(t).AvgPv() / precise;
}

bool CalibrationCache::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  size_t ready = 0;
  for (const auto& [t, entry] : cache_) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (entry->calibration != nullptr) ++ready;
  }
  std::fprintf(f, "approxmem-calibrations v1 %zu\n", ready);
  for (const auto& [t, entry] : cache_) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (entry->calibration != nullptr) entry->calibration->Serialize(f);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

StatusOr<size_t> CalibrationCache::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open calibration file: " + path);
  }
  size_t count = 0;
  if (std::fscanf(f, "approxmem-calibrations v1 %zu\n", &count) != 1) {
    std::fclose(f);
    return Status::InvalidArgument("bad calibration file header");
  }
  size_t loaded = 0;
  for (size_t i = 0; i < count; ++i) {
    StatusOr<CellCalibration> calib = CellCalibration::Deserialize(f);
    if (!calib.ok()) {
      std::fclose(f);
      return calib.status();
    }
    // Only adopt entries whose model parameters match this cache's base
    // configuration (T varies per entry by design).
    const MlcConfig& config = calib->config();
    const MlcConfig& base = base_config_;
    const bool compatible =
        config.levels == base.levels && config.beta == base.beta &&
        config.drift_mu_per_decade == base.drift_mu_per_decade &&
        config.drift_sigma_per_decade == base.drift_sigma_per_decade &&
        config.elapsed_seconds == base.elapsed_seconds;
    if (compatible) {
      std::lock_guard<std::mutex> lock(mu_);
      std::unique_ptr<Entry>& slot = cache_[config.t_width];
      if (slot == nullptr) {
        slot = std::make_unique<Entry>();
        slot->calibration = std::make_unique<CellCalibration>(
            std::move(calib.value()));
        ++loaded;
      }
    }
  }
  std::fclose(f);
  return loaded;
}

}  // namespace approxmem::mlc
