// Configuration of the multi-level-cell (MLC) PCM model from Section 2 of
// the paper (parameters of Table 2, inherited from Sampson et al., MICRO'13).
#ifndef APPROXMEM_MLC_MLC_CONFIG_H_
#define APPROXMEM_MLC_MLC_CONFIG_H_

#include <cstdint>

#include "common/status.h"

namespace approxmem::mlc {

/// Parameters of one analog memory cell and its access model.
///
/// The analog value space is [0, 1]. A cell with `levels` levels stores
/// log2(levels) bits; level i targets the analog value (2i+1)/(2*levels).
/// Writes follow the iterative program-and-verify loop of Function WRITE in
/// the paper; reads add drift noise and quantize (Section 2.1.2).
struct MlcConfig {
  /// Number of discrete levels. 4 (2-bit MLC) throughout the paper.
  int levels = 4;

  /// Per-step write disturbance: a P&V step from value v toward target vd
  /// lands at N(vd, (beta*|vd - v|)^2). Table 2: beta = 0.035.
  double beta = 0.035;

  /// Half-width T of the target analog range accepted by program-and-verify.
  /// T = 0.025 is the precise configuration (avg #P ~= 2.98); T must stay
  /// below 1/(2*levels) so that target ranges do not overlap.
  double t_width = 0.025;

  /// Read drift per decade of elapsed time. Table 2 lists the read
  /// fluctuation as mu = 0.067 and sigma = 0.027; we apply them per decade as
  /// mu/10 and sigma/10 (see DESIGN.md "Calibration note") so that the
  /// precise configuration reaches the paper's ~1e-8 raw bit error rate.
  double drift_mu_per_decade = 0.0067;
  double drift_sigma_per_decade = 0.0027;

  /// Time elapsed between write and read, seconds. Table 2: t = 1e5 s.
  /// The drift multiplier is log10(elapsed_seconds).
  double elapsed_seconds = 1e5;

  /// Safety cap on P&V iterations (the loop converges in a handful of steps
  /// in practice; the cap guards against degenerate configurations).
  uint32_t max_pv_iterations = 10000;

  /// Latency anchors (Table 1): a precise array write costs 1 us and a read
  /// costs 50 ns. Approximate write latency scales with avg #P relative to
  /// the precise configuration's avg #P.
  double precise_write_latency_ns = 1000.0;
  double read_latency_ns = 50.0;

  /// The T of the precise reference configuration used for latency scaling
  /// and the p(t) ratio (Section 2.2).
  double precise_t_width = 0.025;

  /// Returns the center analog value of `level` ((2*level+1)/(2*levels)).
  double LevelCenter(int level) const;

  /// Quantizes an analog value to the nearest level, clamped to [0, L-1].
  int Quantize(double analog) const;

  /// Bits stored per cell (log2(levels)); levels must be a power of two.
  int BitsPerCell() const;

  /// Number of cells holding one 32-bit word (16 for 2-bit cells).
  int CellsPerWord() const;

  /// log10(elapsed_seconds), the drift multiplier.
  double DriftDecades() const;

  /// Returns a copy with a different target-range half-width.
  MlcConfig WithT(double t) const;

  /// Validates ranges (levels power of two >= 2, 0 < T < 1/(2L), ...).
  Status Validate() const;
};

/// Upper bound (exclusive) on T for a given level count: 1/(2*levels).
double MaxTWidth(int levels);

}  // namespace approxmem::mlc

#endif  // APPROXMEM_MLC_MLC_CONFIG_H_
