#include "mlc/mlc_config.h"

#include <cmath>

namespace approxmem::mlc {

double MlcConfig::LevelCenter(int level) const {
  return (2.0 * level + 1.0) / (2.0 * levels);
}

int MlcConfig::Quantize(double analog) const {
  const int level = static_cast<int>(analog * levels);
  if (level < 0) return 0;
  if (level >= levels) return levels - 1;
  return level;
}

int MlcConfig::BitsPerCell() const {
  int bits = 0;
  for (int l = levels; l > 1; l >>= 1) ++bits;
  return bits;
}

int MlcConfig::CellsPerWord() const { return 32 / BitsPerCell(); }

double MlcConfig::DriftDecades() const { return std::log10(elapsed_seconds); }

MlcConfig MlcConfig::WithT(double t) const {
  MlcConfig copy = *this;
  copy.t_width = t;
  return copy;
}

Status MlcConfig::Validate() const {
  if (levels < 2 || (levels & (levels - 1)) != 0) {
    return Status::InvalidArgument("levels must be a power of two >= 2");
  }
  if (32 % BitsPerCell() != 0) {
    return Status::InvalidArgument("bits per cell must divide 32");
  }
  if (t_width <= 0.0 || t_width >= MaxTWidth(levels)) {
    return Status::InvalidArgument("t_width must be in (0, 1/(2*levels))");
  }
  if (precise_t_width <= 0.0 || precise_t_width >= MaxTWidth(levels)) {
    return Status::InvalidArgument("precise_t_width out of range");
  }
  if (beta <= 0.0 || beta >= 1.0) {
    return Status::InvalidArgument("beta must be in (0, 1)");
  }
  if (drift_sigma_per_decade < 0.0 || drift_mu_per_decade < 0.0) {
    return Status::InvalidArgument("drift parameters must be non-negative");
  }
  if (elapsed_seconds < 1.0) {
    return Status::InvalidArgument("elapsed_seconds must be >= 1");
  }
  if (max_pv_iterations == 0) {
    return Status::InvalidArgument("max_pv_iterations must be positive");
  }
  if (precise_write_latency_ns <= 0.0 || read_latency_ns <= 0.0) {
    return Status::InvalidArgument("latencies must be positive");
  }
  return Status::Ok();
}

double MaxTWidth(int levels) { return 1.0 / (2.0 * levels); }

}  // namespace approxmem::mlc
