#include "mlc/cell.h"

#include <cmath>

#include "common/check.h"

namespace approxmem::mlc {

CellWriteResult WriteCell(int target_level, const MlcConfig& config,
                          Rng& rng) {
  APPROXMEM_CHECK(target_level >= 0 && target_level < config.levels);
  const double vd = config.LevelCenter(target_level);
  const double lo = vd - config.t_width;
  const double hi = vd + config.t_width;

  CellWriteResult result;
  double v = 0.0;  // Each write first resets the analog value to zero.
  while ((v < lo || v > hi) && result.iterations < config.max_pv_iterations) {
    // The paper writes N(vd - v, |beta*(vd - v)|) with N(mu, sigma^2)
    // notation: the second argument is the *variance* of the step.
    const double distance = vd - v;
    v += rng.Normal(distance, std::sqrt(config.beta * std::fabs(distance)));
    ++result.iterations;
  }
  result.analog = v;
  return result;
}

double ApplyReadDrift(double analog, const MlcConfig& config, Rng& rng) {
  const double decades = config.DriftDecades();
  const double drift = rng.Normal(config.drift_mu_per_decade * decades,
                                  config.drift_sigma_per_decade * decades);
  return analog + drift;
}

int ReadCell(double analog, const MlcConfig& config, Rng& rng) {
  return config.Quantize(ApplyReadDrift(analog, config, rng));
}

}  // namespace approxmem::mlc
