// Packing of 32-bit words into concatenated MLC cells.
//
// A 32-bit integer is stored in 32/bits_per_cell concatenated cells
// (16 cells for the paper's 2-bit MLC). Cell 0 holds the most significant
// bits so that "highest-order bits first" bit-priority statements from the
// approximate-storage literature map onto low cell indices.
#ifndef APPROXMEM_MLC_WORD_CODEC_H_
#define APPROXMEM_MLC_WORD_CODEC_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "mlc/mlc_config.h"

namespace approxmem::mlc {

/// Maximum number of cells a 32-bit word can occupy (SLC: 32 1-bit cells).
inline constexpr int kMaxCellsPerWord = 32;

/// Fixed-capacity buffer of per-cell levels for one 32-bit word. Only the
/// first MlcConfig::CellsPerWord() entries are meaningful.
using WordLevels = std::array<uint8_t, kMaxCellsPerWord>;

/// Splits `word` into per-cell levels, most significant cell first.
WordLevels EncodeWord(uint32_t word, const MlcConfig& config);

/// Reassembles a 32-bit word from per-cell levels (inverse of EncodeWord).
uint32_t DecodeWord(const WordLevels& levels, const MlcConfig& config);

/// Batched codec over spans: encodes `count` words into
/// `levels_out[0, count * config.CellsPerWord())`, word-major, each word
/// laid out exactly as EncodeWord would produce it (most significant cell
/// first). The per-word scalar loop is replaced by flat shift/mask kernels
/// the compiler can vectorize, with a fast path for the paper's 16x2-bit
/// MLC layout.
void EncodeWords(const uint32_t* words, size_t count, const MlcConfig& config,
                 uint8_t* levels_out);

/// Inverse of EncodeWords: decodes `count` words from the word-major level
/// span (bit-identical to per-word DecodeWord).
void DecodeWords(const uint8_t* levels, size_t count, const MlcConfig& config,
                 uint32_t* words_out);

/// Returns the absolute value change caused by replacing the level of
/// `cell_index` with `new_level` in `word`. Used by tests to reason about
/// error magnitudes (high cells perturb values by up to 2^30 * delta).
uint32_t CellFlipMagnitude(uint32_t word, int cell_index, int new_level,
                           const MlcConfig& config);

}  // namespace approxmem::mlc

#endif  // APPROXMEM_MLC_WORD_CODEC_H_
