// Inv: the inversion-pair count, the alternative sortedness measure the
// paper cites (Estivill-Castro & Wood survey) but does not adopt. Provided
// for cross-checks: Inv = 0 iff Rem = 0 iff sorted.
#ifndef APPROXMEM_SORTEDNESS_INVERSIONS_H_
#define APPROXMEM_SORTEDNESS_INVERSIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace approxmem::sortedness {

/// Number of pairs (i < j) with values[i] > values[j]; O(n log n)
/// merge-counting.
uint64_t InversionCount(const std::vector<uint32_t>& values);

/// InversionCount normalized by n*(n-1)/2 (0 = sorted, ~0.5 = random,
/// 1 = reverse sorted). 0 for n < 2.
double InversionRatio(const std::vector<uint32_t>& values);

}  // namespace approxmem::sortedness

#endif  // APPROXMEM_SORTEDNESS_INVERSIONS_H_
