#include "sortedness/lis.h"

#include <algorithm>

namespace approxmem::sortedness {

size_t LongestNonDecreasingSubsequence(const std::vector<uint32_t>& values) {
  // Patience sorting: tails[k] is the smallest possible tail of a
  // non-decreasing subsequence of length k+1. upper_bound keeps runs of
  // equal values extendable (non-decreasing, not strictly increasing).
  std::vector<uint32_t> tails;
  tails.reserve(values.size() / 4);
  for (const uint32_t v : values) {
    auto it = std::upper_bound(tails.begin(), tails.end(), v);
    if (it == tails.end()) {
      tails.push_back(v);
    } else {
      *it = v;
    }
  }
  return tails.size();
}

size_t Rem(const std::vector<uint32_t>& values) {
  return values.size() - LongestNonDecreasingSubsequence(values);
}

double RemRatio(const std::vector<uint32_t>& values) {
  if (values.empty()) return 0.0;
  return static_cast<double>(Rem(values)) /
         static_cast<double>(values.size());
}

std::vector<uint8_t> LongestNonDecreasingMembership(
    const std::vector<uint32_t>& values) {
  const size_t n = values.size();
  std::vector<uint8_t> member(n, 0);
  if (n == 0) return member;

  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<uint32_t> tails;       // Smallest tail value per length.
  std::vector<size_t> tail_index;    // Index of that tail element.
  std::vector<size_t> prev(n, kNone);  // Predecessor links.
  for (size_t i = 0; i < n; ++i) {
    auto it = std::upper_bound(tails.begin(), tails.end(), values[i]);
    const size_t pile = static_cast<size_t>(it - tails.begin());
    prev[i] = pile == 0 ? kNone : tail_index[pile - 1];
    if (it == tails.end()) {
      tails.push_back(values[i]);
      tail_index.push_back(i);
    } else {
      *it = values[i];
      tail_index[pile] = i;
    }
  }
  // Walk back from the tail of the longest pile.
  for (size_t i = tail_index.back(); i != kNone; i = prev[i]) member[i] = 1;
  return member;
}

size_t LongestNonDecreasingSubsequenceBruteForce(
    const std::vector<uint32_t>& values) {
  const size_t n = values.size();
  if (n == 0) return 0;
  std::vector<size_t> best(n, 1);
  size_t longest = 1;
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (values[j] <= values[i]) best[i] = std::max(best[i], best[j] + 1);
    }
    longest = std::max(longest, best[i]);
  }
  return longest;
}

}  // namespace approxmem::sortedness
