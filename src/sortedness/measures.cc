#include "sortedness/measures.h"

#include <algorithm>

#include "sortedness/inversions.h"
#include "sortedness/lis.h"

namespace approxmem::sortedness {

bool IsSorted(const std::vector<uint32_t>& values) {
  return std::is_sorted(values.begin(), values.end());
}

namespace {

SortednessReport MeasureValues(const std::vector<uint32_t>& values,
                               double error_rate) {
  SortednessReport report;
  report.n = values.size();
  report.rem = Rem(values);
  report.rem_ratio =
      report.n == 0
          ? 0.0
          : static_cast<double>(report.rem) / static_cast<double>(report.n);
  report.error_rate = error_rate;
  report.inversions = InversionCount(values);
  report.inversion_ratio = InversionRatio(values);
  report.sorted = report.rem == 0;
  return report;
}

}  // namespace

SortednessReport Measure(const approx::ApproxArrayU32& array) {
  return MeasureValues(array.Snapshot(), array.ErrorRate());
}

SortednessReport Measure(const std::vector<uint32_t>& values) {
  return MeasureValues(values, 0.0);
}

bool IsPermutationOf(std::vector<uint32_t> original,
                     std::vector<uint32_t> sorted) {
  if (original.size() != sorted.size()) return false;
  std::sort(original.begin(), original.end());
  std::sort(sorted.begin(), sorted.end());
  return original == sorted;
}

}  // namespace approxmem::sortedness
