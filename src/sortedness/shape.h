// Sequence-shape export for Figures 5-7.
//
// The paper visualizes the array after sorting in approximate memory as a
// scatter of (index, value). We export a downsampled CSV per run plus a
// compact textual summary (quantiles of the deviation from the precisely
// sorted reference) so the shape can be judged from bench output alone.
#ifndef APPROXMEM_SORTEDNESS_SHAPE_H_
#define APPROXMEM_SORTEDNESS_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace approxmem::sortedness {

/// Summary of how far a sequence is from its sorted self.
struct ShapeSummary {
  size_t n = 0;
  /// Fraction of positions whose value differs from the precisely sorted
  /// reference at that position.
  double displaced_fraction = 0.0;
  /// Quantiles of |value - reference| / 2^32 over displaced positions.
  double deviation_p50 = 0.0;
  double deviation_p99 = 0.0;
  double deviation_max = 0.0;
};

/// Compares `values` against its own sorted order.
ShapeSummary SummarizeShape(const std::vector<uint32_t>& values);

/// Writes up to `max_points` evenly sampled (index, value) rows as CSV.
/// Returns false on I/O failure.
bool WriteShapeCsv(const std::vector<uint32_t>& values,
                   const std::string& path, size_t max_points = 4096);

/// Renders a crude text sparkline (one char per bucket, height 0-9 by mean
/// value) so bench output shows the Figures 5-7 silhouettes directly.
std::string ShapeSparkline(const std::vector<uint32_t>& values,
                           size_t buckets = 64);

}  // namespace approxmem::sortedness

#endif  // APPROXMEM_SORTEDNESS_SHAPE_H_
