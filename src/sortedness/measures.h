// Aggregate sortedness report for an array after an approximate sort.
#ifndef APPROXMEM_SORTEDNESS_MEASURES_H_
#define APPROXMEM_SORTEDNESS_MEASURES_H_

#include <cstdint>
#include <vector>

#include "approx/approx_array.h"

namespace approxmem::sortedness {

/// Everything Figures 4-7 and Table 3 report about one sorted-in-approx run.
struct SortednessReport {
  size_t n = 0;
  size_t rem = 0;            // Rem(X) via exact LIS.
  double rem_ratio = 0.0;    // Rem / n.
  double error_rate = 0.0;   // Fraction of elements whose value deviates.
  uint64_t inversions = 0;   // Inv(X), the alternative measure.
  double inversion_ratio = 0.0;
  bool sorted = false;       // Rem == 0.
};

/// True iff `values` is non-decreasing.
bool IsSorted(const std::vector<uint32_t>& values);

/// Computes the full report from an array's stored/intended state. Does not
/// touch the array's access counters.
SortednessReport Measure(const approx::ApproxArrayU32& array);

/// Computes the report from a plain snapshot (no error-rate information).
SortednessReport Measure(const std::vector<uint32_t>& values);

/// True iff `sorted` is a permutation of `original` (multiset equality).
/// Used by tests and the refine pipeline's verification step.
bool IsPermutationOf(std::vector<uint32_t> original,
                     std::vector<uint32_t> sorted);

}  // namespace approxmem::sortedness

#endif  // APPROXMEM_SORTEDNESS_MEASURES_H_
