#include "sortedness/shape.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace approxmem::sortedness {

ShapeSummary SummarizeShape(const std::vector<uint32_t>& values) {
  ShapeSummary summary;
  summary.n = values.size();
  if (values.empty()) return summary;

  std::vector<uint32_t> reference = values;
  std::sort(reference.begin(), reference.end());

  std::vector<double> deviations;
  deviations.reserve(values.size() / 16);
  size_t displaced = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] != reference[i]) {
      ++displaced;
      const uint32_t delta = values[i] > reference[i]
                                 ? values[i] - reference[i]
                                 : reference[i] - values[i];
      deviations.push_back(static_cast<double>(delta) / 4294967296.0);
    }
  }
  summary.displaced_fraction =
      static_cast<double>(displaced) / static_cast<double>(values.size());
  if (!deviations.empty()) {
    std::sort(deviations.begin(), deviations.end());
    summary.deviation_p50 = deviations[deviations.size() / 2];
    summary.deviation_p99 = deviations[deviations.size() * 99 / 100];
    summary.deviation_max = deviations.back();
  }
  return summary;
}

bool WriteShapeCsv(const std::vector<uint32_t>& values,
                   const std::string& path, size_t max_points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "index,value\n");
  const size_t n = values.size();
  const size_t stride = n <= max_points ? 1 : n / max_points;
  for (size_t i = 0; i < n; i += stride) {
    std::fprintf(f, "%zu,%u\n", i, values[i]);
  }
  std::fclose(f);
  return true;
}

std::string ShapeSparkline(const std::vector<uint32_t>& values,
                           size_t buckets) {
  if (values.empty() || buckets == 0) return "";
  buckets = std::min(buckets, values.size());
  std::string line(buckets, ' ');
  const size_t per_bucket = values.size() / buckets;
  for (size_t b = 0; b < buckets; ++b) {
    const size_t lo = b * per_bucket;
    const size_t hi = b + 1 == buckets ? values.size() : lo + per_bucket;
    double sum = 0.0;
    for (size_t i = lo; i < hi; ++i) sum += values[i];
    const double mean = sum / static_cast<double>(hi - lo);
    const int height =
        std::min(9, static_cast<int>(mean / 4294967296.0 * 10.0));
    line[b] = static_cast<char>('0' + std::max(height, 0));
  }
  return line;
}

}  // namespace approxmem::sortedness
