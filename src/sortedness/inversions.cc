#include "sortedness/inversions.h"

namespace approxmem::sortedness {
namespace {

// Merge-sorts values[lo, hi) through scratch, returning the inversion count.
uint64_t SortAndCount(std::vector<uint32_t>& values,
                      std::vector<uint32_t>& scratch, size_t lo, size_t hi) {
  if (hi - lo < 2) return 0;
  const size_t mid = lo + (hi - lo) / 2;
  uint64_t inversions = SortAndCount(values, scratch, lo, mid) +
                        SortAndCount(values, scratch, mid, hi);
  size_t left = lo;
  size_t right = mid;
  for (size_t out = lo; out < hi; ++out) {
    if (left < mid && (right >= hi || values[left] <= values[right])) {
      scratch[out] = values[left++];
    } else {
      if (left < mid) inversions += mid - left;
      scratch[out] = values[right++];
    }
  }
  for (size_t i = lo; i < hi; ++i) values[i] = scratch[i];
  return inversions;
}

}  // namespace

uint64_t InversionCount(const std::vector<uint32_t>& values) {
  std::vector<uint32_t> work = values;
  std::vector<uint32_t> scratch(values.size());
  return SortAndCount(work, scratch, 0, work.size());
}

double InversionRatio(const std::vector<uint32_t>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double max_pairs =
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(InversionCount(values)) / max_pairs;
}

}  // namespace approxmem::sortedness
