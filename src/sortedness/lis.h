// Longest increasing subsequence and the Rem measure (Section 3.3).
//
// Rem(X) = n - max{k | X has an ascending subsequence of length k}: the
// number of elements that must be removed to leave a sorted sequence.
// "Ascending" is non-decreasing, since duplicates are sorted data.
#ifndef APPROXMEM_SORTEDNESS_LIS_H_
#define APPROXMEM_SORTEDNESS_LIS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace approxmem::sortedness {

/// Length of the longest non-decreasing subsequence, O(n log n) patience
/// algorithm. Empty input yields 0.
size_t LongestNonDecreasingSubsequence(const std::vector<uint32_t>& values);

/// Rem(X) = |X| - LIS(X).
size_t Rem(const std::vector<uint32_t>& values);

/// Rem(X) / |X|; 0 for empty input. The paper's headline sortedness metric.
double RemRatio(const std::vector<uint32_t>& values);

/// Reference O(n^2) implementation for property tests.
size_t LongestNonDecreasingSubsequenceBruteForce(
    const std::vector<uint32_t>& values);

/// Marks one longest non-decreasing subsequence: out[i] == 1 iff element i
/// belongs to the reconstructed LIS. O(n log n) time; unlike the Listing 1
/// heuristic it needs O(n) intermediate state (predecessor links), which is
/// why the paper prefers the heuristic on write-limited memory.
std::vector<uint8_t> LongestNonDecreasingMembership(
    const std::vector<uint32_t>& values);

}  // namespace approxmem::sortedness

#endif  // APPROXMEM_SORTEDNESS_LIS_H_
