// Strict modeled-memory budget for out-of-core processing.
//
// The external sort must never use more working memory than it was granted:
// run formation sizes its runs from the budget, and the k-way merge derives
// its fan-in from what is left after the output buffer. MemoryBudget is the
// enforcement point — every working buffer reserves its modeled footprint
// before it exists and releases it when it dies, and a reservation that
// would exceed the capacity CHECK-fails (a breach means the sizing math is
// wrong, so every downstream number would be garbage, same policy as the
// other simulator invariants).
//
// The budget accounts *modeled* bytes, not host allocations: simulated
// arrays (approx/approx_array.h) and host staging vectors both charge the
// bytes the modeled machine would need. Thread-safe: the flush path of the
// overlap pipeline releases buffers from device-completion callbacks.
#ifndef APPROXMEM_COMMON_MEMORY_BUDGET_H_
#define APPROXMEM_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace approxmem {

class MemoryBudget {
 public:
  /// A budget of `capacity_bytes` modeled bytes. Zero capacity means
  /// unlimited (used by tests that exercise the pipeline without a
  /// contract).
  explicit MemoryBudget(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` against the budget. CHECK-fails when the reservation
  /// would exceed capacity — callers must size their buffers from
  /// CanReserve/remaining() first; Reserve is the enforcement, not the
  /// negotiation.
  void Reserve(size_t bytes);

  /// True when `bytes` more would still fit.
  bool CanReserve(size_t bytes) const;

  /// Releases a previous reservation. CHECK-fails on over-release.
  void Release(size_t bytes);

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  /// Remaining headroom; SIZE_MAX when the budget is unlimited.
  size_t remaining() const;
  /// Largest number of bytes ever reserved at once.
  size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  size_t capacity_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> high_water_{0};
};

/// RAII reservation: charges on construction, releases on destruction.
/// Movable so buffers can hand their reservation to a flush request.
class BudgetReservation {
 public:
  BudgetReservation() = default;
  BudgetReservation(MemoryBudget* budget, size_t bytes)
      : budget_(budget), bytes_(bytes) {
    if (budget_ != nullptr) budget_->Reserve(bytes_);
  }
  BudgetReservation(BudgetReservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  BudgetReservation& operator=(BudgetReservation&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~BudgetReservation() { reset(); }

  BudgetReservation(const BudgetReservation&) = delete;
  BudgetReservation& operator=(const BudgetReservation&) = delete;

  /// Releases the reservation early.
  void reset() {
    if (budget_ != nullptr) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  size_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace approxmem

#endif  // APPROXMEM_COMMON_MEMORY_BUDGET_H_
