// Fast, reproducible pseudo-random number generation.
//
// All stochastic behaviour in the simulator (program-and-verify write steps,
// read drift, pivot selection, workload generation) flows through Rng so that
// experiments are exactly reproducible from a seed. The generator is
// xoshiro256++ seeded via SplitMix64; it is not cryptographically secure and
// does not need to be.
#ifndef APPROXMEM_COMMON_RANDOM_H_
#define APPROXMEM_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace approxmem {

/// xoshiro256++ pseudo-random generator with convenience distributions.
///
/// The class satisfies the UniformRandomBitGenerator requirements so it can
/// also be plugged into <random> distributions when convenient, but the
/// built-in methods (Uniform, Normal, ...) are faster and are what the
/// simulator uses on its hot paths.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator deterministically; equal seeds give equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return Next64(); }

  /// Returns the next 64 random bits.
  uint64_t Next64();

  /// Returns a double uniformly distributed in [0, 1).
  double UniformDouble();

  /// Returns a double uniformly distributed in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, bound). bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  /// Returns a 32-bit value uniformly distributed over all 2^32 values.
  uint32_t NextU32() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Returns a sample from N(mean, stddev^2) via the polar (Marsaglia)
  /// method with one-value caching.
  double Normal(double mean, double stddev);

  /// Returns a standard normal sample, N(0, 1).
  double StandardNormal();

  /// Splits off an independently seeded generator; useful for giving each
  /// subsystem its own stream while keeping a single experiment seed.
  Rng Split();

  /// Fills `out[0, count)` with UniformDouble() draws, in order. The stream
  /// advances exactly `count` draws — batched refills are interchangeable
  /// with per-draw calls.
  void FillUniformDoubles(double* out, size_t count);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Generates `n` keys uniformly distributed over the full uint32 range.
std::vector<uint32_t> UniformKeys(size_t n, Rng& rng);

/// Generates `n` keys from a zipf-like skewed distribution (many duplicates).
/// `skew` in (0, 2]; larger means more skew. Used by workload sweeps.
std::vector<uint32_t> SkewedKeys(size_t n, double skew, Rng& rng);

/// Generates an almost-sorted sequence: sorted, then `swaps` random
/// transpositions are applied. Exercises adaptivity in the refine stage.
std::vector<uint32_t> NearlySortedKeys(size_t n, size_t swaps, Rng& rng);

}  // namespace approxmem

#endif  // APPROXMEM_COMMON_RANDOM_H_
