#include "common/flags.h"

#include <cstdlib>
#include <string_view>

namespace approxmem {

StatusOr<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      return Status::InvalidArgument("unexpected argument: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // boolean "--name".
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      flags.values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

size_t Flags::EnvSize(const char* var, size_t def) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return def;
  return static_cast<size_t>(parsed);
}

}  // namespace approxmem
