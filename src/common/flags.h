// Tiny command-line flag parser for bench and example binaries.
//
// Supports "--name=value", "--name value", and boolean "--name". Unknown
// flags are reported so typos fail loudly instead of silently running the
// default experiment.
#ifndef APPROXMEM_COMMON_FLAGS_H_
#define APPROXMEM_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace approxmem {

/// Parses argv into name -> value pairs and serves typed lookups.
class Flags {
 public:
  /// Parses flags; returns InvalidArgument on malformed input. Positional
  /// arguments are rejected (bench binaries take flags only).
  static StatusOr<Flags> Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  /// Typed getters return `def` when the flag is absent.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Environment override helper: returns env var as size_t if set and
  /// parseable, else `def`. Used for APPROX_BENCH_N.
  static size_t EnvSize(const char* var, size_t def);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace approxmem

#endif  // APPROXMEM_COMMON_FLAGS_H_
