#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace approxmem {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  APPROXMEM_CHECK(hi > lo);
  APPROXMEM_CHECK(bins > 0);
}

void Histogram::Add(double x) {
  ptrdiff_t idx = static_cast<ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<ptrdiff_t>(idx, 0,
                              static_cast<ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::Quantile(double p) const {
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return bin_center(i);
  }
  return bin_center(counts_.size() - 1);
}

}  // namespace approxmem
