// Aligned-column table printing for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables or figures and
// prints it as an aligned text table (and optionally CSV), so the output in
// bench_output.txt can be compared side by side with the paper.
#ifndef APPROXMEM_COMMON_TABLE_PRINTER_H_
#define APPROXMEM_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace approxmem {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table, e.g. "Figure 4(b): Rem ratio".
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Formats helpers for cells.
  static std::string Fmt(double v, int precision = 4);
  static std::string FmtPercent(double v, int precision = 2);
  static std::string FmtInt(long long v);

  /// Prints the aligned table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  /// Writes the table as CSV to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace approxmem

#endif  // APPROXMEM_COMMON_TABLE_PRINTER_H_
