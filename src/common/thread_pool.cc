#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace approxmem {
namespace {

thread_local bool t_in_worker = false;

}  // namespace

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::InWorker() { return t_in_worker; }

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreads();
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Stopping and fully drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  if (workers_.empty() || total == 1 || InWorker()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Shared loop state. Indices are claimed with fetch_add so each index is
  // executed exactly once by whichever thread claims it; completion is
  // counted per index, so the caller's wait cannot miss work even when a
  // queued helper never gets scheduled.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};
    size_t end = 0;
    size_t total = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr exception;
  };
  auto state = std::make_shared<State>();
  state->next.store(begin);
  state->end = end;
  state->total = total;
  state->fn = &fn;

  auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const size_t i = s->next.fetch_add(1);
      if (i >= s->end) break;
      if (!s->failed.load(std::memory_order_relaxed)) {
        try {
          (*s->fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(s->mu);
          if (s->exception == nullptr) s->exception = std::current_exception();
          s->failed.store(true, std::memory_order_relaxed);
        }
      }
      if (s->done.fetch_add(1) + 1 == s->total) {
        // Lock before notifying so the caller's predicate check cannot race
        // past the final increment and miss the wakeup.
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(workers_.size(), total - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([state, drain] { drain(state); });
    }
  }
  work_cv_.notify_all();

  drain(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == state->total; });
  if (state->exception != nullptr) std::rethrow_exception(state->exception);
}

}  // namespace approxmem
