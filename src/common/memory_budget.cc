#include "common/memory_budget.h"

#include <limits>

#include "common/check.h"

namespace approxmem {

void MemoryBudget::Reserve(size_t bytes) {
  const size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  APPROXMEM_CHECK(capacity_ == 0 || now <= capacity_);
  size_t peak = high_water_.load(std::memory_order_relaxed);
  while (peak < now &&
         !high_water_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
}

bool MemoryBudget::CanReserve(size_t bytes) const {
  if (capacity_ == 0) return true;
  const size_t now = used_.load(std::memory_order_relaxed);
  return now <= capacity_ && bytes <= capacity_ - now;
}

void MemoryBudget::Release(size_t bytes) {
  const size_t before = used_.fetch_sub(bytes, std::memory_order_relaxed);
  APPROXMEM_CHECK(before >= bytes);
}

size_t MemoryBudget::remaining() const {
  if (capacity_ == 0) return std::numeric_limits<size_t>::max();
  const size_t now = used_.load(std::memory_order_relaxed);
  return now >= capacity_ ? 0 : capacity_ - now;
}

}  // namespace approxmem
