// Minimal Status / StatusOr error-propagation types.
//
// Library code in this project does not use exceptions (Google style).
// Recoverable errors are surfaced through Status; programming errors and
// violated invariants abort through the CHECK macros in common/check.h.
#ifndef APPROXMEM_COMMON_STATUS_H_
#define APPROXMEM_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace approxmem {

/// Error categories carried by Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// A transient substrate failure (e.g. corruption detected mid-run); the
  /// operation may succeed if retried. See Status::IsRetryable().
  kUnavailable,
};

/// Returns a short human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic result of an operation that can fail.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// message. Statuses are cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// Classification used by the resilient execution layer: retryable
  /// failures are data- or substrate-dependent conditions a bounded retry
  /// (possibly at a different operating point) may cure — kUnavailable
  /// (transient substrate failure) and kInternal (a violated runtime
  /// invariant such as failed output verification). Configuration and
  /// usage errors (kInvalidArgument, kFailedPrecondition, kOutOfRange,
  /// kUnimplemented) are deterministic and never retried.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kInternal;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit on purpose: mirrors absl::StatusOr).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Constructs from a non-OK status. Must not be called with an OK status.
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace approxmem

#endif  // APPROXMEM_COMMON_STATUS_H_
