// Streaming statistics helpers used by calibration and the bench harness.
#ifndef APPROXMEM_COMMON_STATS_H_
#define APPROXMEM_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace approxmem {

/// Accumulates count/mean/variance/min/max in one pass (Welford's method).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// boundary bins. Used to record program-and-verify iteration counts and
/// stored-offset distributions during calibration.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  size_t bins() const { return counts_.size(); }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }
  double bin_center(size_t i) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Returns the p-quantile (p in [0,1]) estimated from bin centers.
  double Quantile(double p) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace approxmem

#endif  // APPROXMEM_COMMON_STATS_H_
