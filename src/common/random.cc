#include "common/random.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace approxmem {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64 step, used only for seeding.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

uint64_t Rng::UniformInt(uint64_t bound) {
  APPROXMEM_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::StandardNormal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * StandardNormal();
}

Rng Rng::Split() { return Rng(Next64()); }

void Rng::FillUniformDoubles(double* out, size_t count) {
  for (size_t i = 0; i < count; ++i) out[i] = UniformDouble();
}

std::vector<uint32_t> UniformKeys(size_t n, Rng& rng) {
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = rng.NextU32();
  return keys;
}

std::vector<uint32_t> SkewedKeys(size_t n, double skew, Rng& rng) {
  APPROXMEM_CHECK(skew > 0.0);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) {
    // Inverse-transform sample of a bounded power-law: u^(1/skew) compresses
    // mass toward 0. The small 10-bit alphabet guarantees heavy duplication
    // (the point of this workload) at any n.
    const double u = rng.UniformDouble();
    const double x = std::pow(u, 1.0 / skew);
    k = static_cast<uint32_t>(x * 1023.0);
  }
  return keys;
}

std::vector<uint32_t> NearlySortedKeys(size_t n, size_t swaps, Rng& rng) {
  std::vector<uint32_t> keys = UniformKeys(n, rng);
  std::sort(keys.begin(), keys.end());
  for (size_t s = 0; s < swaps && n > 1; ++s) {
    const size_t i = rng.UniformInt(n);
    const size_t j = rng.UniformInt(n);
    std::swap(keys[i], keys[j]);
  }
  return keys;
}

}  // namespace approxmem
