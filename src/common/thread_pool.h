// Fixed-size worker pool with a ParallelFor helper for the experiment
// harness.
//
// The pool parallelizes the *harness* (Monte-Carlo calibration shards,
// (algorithm x T) sweep cells), never the simulated device. Callers are
// responsible for decomposing work deterministically (fixed shards, each
// with its own Rng substream); the pool only schedules, so results are
// independent of the thread count and of completion order.
#ifndef APPROXMEM_COMMON_THREAD_POOL_H_
#define APPROXMEM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace approxmem {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the calling thread participates in every
  /// ParallelFor, so `threads` is the total concurrency. `threads <= 0`
  /// means hardware concurrency. `threads == 1` spawns no workers and runs
  /// everything inline, which reproduces serial execution exactly.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers plus the participating caller).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end), potentially concurrently, and
  /// blocks until every iteration has finished. The first exception thrown
  /// by fn is rethrown on the caller; iterations not yet started when it
  /// was thrown are skipped. The caller always participates and can drain
  /// the whole range alone, so ParallelFor completes even when every worker
  /// is blocked elsewhere. Calling from inside a worker runs the loop
  /// inline (serially), which makes nested ParallelFor — e.g. calibration
  /// sharding inside a sweep cell — deadlock-free.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Enqueues `fn` to run on some worker thread and returns immediately.
  /// With no workers (threads == 1) the task runs inline before Schedule
  /// returns, which reproduces serial execution exactly — callers needing a
  /// completion signal build one into the task (the async device keeps a
  /// per-transfer done flag). Tasks must not throw.
  void Schedule(std::function<void()> fn);

  /// True when called from one of this process's pool worker threads.
  static bool InWorker();

  /// Hardware concurrency, never 0.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace approxmem

#endif  // APPROXMEM_COMMON_THREAD_POOL_H_
