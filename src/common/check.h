// CHECK macros for invariants that must hold in correct programs.
//
// These abort the process with a diagnostic rather than throwing: the
// library is exception-free, and a violated invariant in a memory simulator
// means every downstream number would be garbage.
#ifndef APPROXMEM_COMMON_CHECK_H_
#define APPROXMEM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace approxmem::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace approxmem::internal

#define APPROXMEM_CHECK(expr)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::approxmem::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                                 \
  } while (false)

#define APPROXMEM_CHECK_OK(status_expr)                                   \
  do {                                                                    \
    const ::approxmem::Status approxmem_check_status = (status_expr);     \
    if (!approxmem_check_status.ok()) {                                   \
      ::approxmem::internal::CheckFailed(                                 \
          __FILE__, __LINE__, approxmem_check_status.ToString().c_str()); \
    }                                                                     \
  } while (false)

#endif  // APPROXMEM_COMMON_CHECK_H_
