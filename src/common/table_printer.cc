#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace approxmem {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtPercent(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string TablePrinter::FmtInt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::fprintf(out, "\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[i]), row[i].c_str(),
                   i + 1 == row.size() ? "" : "  ");
    }
    std::fprintf(out, "\n");
  };
  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    std::string rule(total > 2 ? total - 2 : total, '-');
    std::fprintf(out, "%s\n", rule.c_str());
  }
  for (const auto& row : rows_) print_row(row);
  std::fflush(out);
}

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto write_row = [f](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::fprintf(f, "%s%s", row[i].c_str(), i + 1 == row.size() ? "" : ",");
    }
    std::fprintf(f, "\n");
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
  std::fclose(f);
  return true;
}

}  // namespace approxmem
