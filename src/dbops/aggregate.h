// Sort-based GROUP BY aggregation on approximate memory — the "other
// database operations (such as aggregations)" the paper's conclusion names
// as future work.
//
// The group-key column is sorted with approx-refine (exact output), then a
// single precise scan folds each group's values. The aggregate results are
// exact; the savings come from the sort.
#ifndef APPROXMEM_DBOPS_AGGREGATE_H_
#define APPROXMEM_DBOPS_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "sort/sort_common.h"

namespace approxmem::dbops {

/// One output group of GroupByAggregate.
struct GroupRow {
  uint32_t group_key = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint32_t min = 0;
  uint32_t max = 0;
};

struct GroupByOptions {
  sort::AlgorithmId algorithm{sort::SortKind::kMsdRadix, 6};
  double t = 0.055;
};

struct GroupByResult {
  std::vector<GroupRow> groups;  // In ascending group_key order.
  /// Write reduction of the underlying sort vs precise-only (Eq. 2).
  double sort_write_reduction = 0.0;
  bool verified = false;
};

/// Computes SELECT key, COUNT(*), SUM(value), MIN(value), MAX(value)
/// FROM (keys, values) GROUP BY key ORDER BY key. `keys` and `values` must
/// have equal length.
StatusOr<GroupByResult> GroupByAggregate(core::ApproxSortEngine& engine,
                                         const std::vector<uint32_t>& keys,
                                         const std::vector<uint32_t>& values,
                                         const GroupByOptions& options);

}  // namespace approxmem::dbops

#endif  // APPROXMEM_DBOPS_AGGREGATE_H_
