// Sort-merge equi-join with approx-refine sorting on both inputs.
//
// Both join columns are sorted in approximate memory and repaired, then a
// precise merge scan emits matching row-id pairs. Join output is exact;
// the write savings come from the two sorts — the heaviest write phase of
// a classic sort-merge join.
#ifndef APPROXMEM_DBOPS_JOIN_H_
#define APPROXMEM_DBOPS_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "sort/sort_common.h"

namespace approxmem::dbops {

struct JoinOptions {
  sort::AlgorithmId algorithm{sort::SortKind::kMsdRadix, 6};
  double t = 0.055;
  /// Safety cap on emitted pairs (cross-product blowup on heavy
  /// duplicates); 0 = unlimited.
  size_t max_output_pairs = 0;
};

/// One matched pair of row ids.
struct JoinPair {
  uint32_t left_row = 0;
  uint32_t right_row = 0;
};

struct JoinResult {
  std::vector<JoinPair> pairs;  // Ordered by join key.
  double left_sort_write_reduction = 0.0;
  double right_sort_write_reduction = 0.0;
  bool truncated = false;  // Hit max_output_pairs.
  bool verified = false;
};

/// Computes SELECT l.row, r.row FROM left l JOIN right r
/// ON l.key = r.key, via approx-refine sort-merge.
StatusOr<JoinResult> SortMergeJoin(core::ApproxSortEngine& engine,
                                   const std::vector<uint32_t>& left_keys,
                                   const std::vector<uint32_t>& right_keys,
                                   const JoinOptions& options);

}  // namespace approxmem::dbops

#endif  // APPROXMEM_DBOPS_JOIN_H_
