#include "dbops/aggregate.h"

#include <algorithm>

namespace approxmem::dbops {

StatusOr<GroupByResult> GroupByAggregate(core::ApproxSortEngine& engine,
                                         const std::vector<uint32_t>& keys,
                                         const std::vector<uint32_t>& values,
                                         const GroupByOptions& options) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys and values must be the same size");
  }
  GroupByResult result;
  if (keys.empty()) {
    result.verified = true;
    return result;
  }

  std::vector<uint32_t> sorted_keys;
  std::vector<uint32_t> row_ids;
  const auto outcome = engine.SortApproxRefine(
      keys, options.algorithm, options.t, &sorted_keys, &row_ids);
  if (!outcome.ok()) return outcome.status();
  if (!outcome->refine.verified()) {
    return Status::Internal("approx-refine sort failed verification");
  }
  result.sort_write_reduction = outcome->write_reduction;

  // Fold the sorted (key, row-id) stream into groups. Values are fetched
  // from precise memory via the record ids — exactly the paper's payload
  // recovery pattern.
  GroupRow current;
  bool open = false;
  for (size_t i = 0; i < sorted_keys.size(); ++i) {
    const uint32_t key = sorted_keys[i];
    const uint32_t value = values[row_ids[i]];
    if (!open || key != current.group_key) {
      if (open) result.groups.push_back(current);
      current = GroupRow{key, 0, 0, value, value};
      open = true;
    }
    ++current.count;
    current.sum += value;
    current.min = std::min(current.min, value);
    current.max = std::max(current.max, value);
  }
  if (open) result.groups.push_back(current);

  // Verification: group keys strictly ascending and counts cover n.
  uint64_t total = 0;
  bool ok = true;
  for (size_t g = 0; g < result.groups.size(); ++g) {
    total += result.groups[g].count;
    if (g > 0 && result.groups[g].group_key <= result.groups[g - 1].group_key) {
      ok = false;
    }
  }
  result.verified = ok && total == keys.size();
  return result;
}

}  // namespace approxmem::dbops
