#include "dbops/join.h"

namespace approxmem::dbops {

StatusOr<JoinResult> SortMergeJoin(core::ApproxSortEngine& engine,
                                   const std::vector<uint32_t>& left_keys,
                                   const std::vector<uint32_t>& right_keys,
                                   const JoinOptions& options) {
  JoinResult result;

  std::vector<uint32_t> left_sorted;
  std::vector<uint32_t> left_ids;
  std::vector<uint32_t> right_sorted;
  std::vector<uint32_t> right_ids;
  if (!left_keys.empty()) {
    const auto left = engine.SortApproxRefine(left_keys, options.algorithm,
                                              options.t, &left_sorted,
                                              &left_ids);
    if (!left.ok()) return left.status();
    if (!left->refine.verified()) {
      return Status::Internal("left sort failed verification");
    }
    result.left_sort_write_reduction = left->write_reduction;
  }
  if (!right_keys.empty()) {
    const auto right = engine.SortApproxRefine(right_keys, options.algorithm,
                                               options.t, &right_sorted,
                                               &right_ids);
    if (!right.ok()) return right.status();
    if (!right->refine.verified()) {
      return Status::Internal("right sort failed verification");
    }
    result.right_sort_write_reduction = right->write_reduction;
  }

  // Merge scan: for each run of equal keys on both sides, emit the cross
  // product of row ids.
  size_t l = 0;
  size_t r = 0;
  while (l < left_sorted.size() && r < right_sorted.size()) {
    if (left_sorted[l] < right_sorted[r]) {
      ++l;
    } else if (left_sorted[l] > right_sorted[r]) {
      ++r;
    } else {
      const uint32_t key = left_sorted[l];
      size_t l_end = l;
      while (l_end < left_sorted.size() && left_sorted[l_end] == key) {
        ++l_end;
      }
      size_t r_end = r;
      while (r_end < right_sorted.size() && right_sorted[r_end] == key) {
        ++r_end;
      }
      for (size_t i = l; i < l_end; ++i) {
        for (size_t j = r; j < r_end; ++j) {
          if (options.max_output_pairs != 0 &&
              result.pairs.size() >= options.max_output_pairs) {
            result.truncated = true;
            result.verified = true;
            return result;
          }
          result.pairs.push_back(JoinPair{left_ids[i], right_ids[j]});
        }
      }
      l = l_end;
      r = r_end;
    }
  }

  // Verification: every emitted pair joins on equal original keys.
  bool ok = true;
  for (const JoinPair& pair : result.pairs) {
    if (left_keys[pair.left_row] != right_keys[pair.right_row]) {
      ok = false;
      break;
    }
  }
  result.verified = ok;
  return result;
}

}  // namespace approxmem::dbops
